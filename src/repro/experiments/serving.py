"""Serving-side cost: what the CA/CDN pays per mechanism under load.

The production-facing dual of the paper's §5 client-cost analysis: the
synthetic client fleet (:mod:`repro.serve.fleet`) replays the browser
cohorts against each registered mechanism's serving stack -- pre-signed
OCSP responder, CRL shard endpoints, aggregate delta distribution,
short-lived re-issuance -- and this experiment reports throughput, tail
latency (p50/p99/p999), bytes per client, and origin signing load, one
digested block per mechanism
(``tests/experiments/golden/serving-*.json``).

A fault leg sweeps the flaky-responder probability on the OCSP fleet to
pin the shape the availability experiment predicts: tail latency is
weakly monotone (and availability strictly falling) as the responder
degrades.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table
from repro.experiments.common import ExperimentResult, stage
from repro.net.faults import FaultKind, FaultPlan, FaultSpec
from repro.serve.fleet import ClientFleet, FleetConfig
from repro.serve.report import MechanismServingReport

EXPERIMENT_ID = "serving"
TITLE = "Serving-side cost under synthetic client load"

#: the fixed fleet shape behind the golden digests -- changing any of
#: these is a digest-visible event (scripts/update_golden.py).
FLEET_SESSIONS = 200_000
FLEET_TICKS = 24
FLEET_TICK_SECONDS = 900
FLEET_REPRESENTATIVES = 2
FLEET_CATALOG = 2_048

#: flaky-responder probabilities swept on the OCSP fleet.
FAULT_SWEEP = (0.0, 0.1, 0.3)


def fleet_config(study: MeasurementStudy) -> FleetConfig:
    """The experiment's pinned fleet configuration for ``study``."""
    return FleetConfig(
        sessions=FLEET_SESSIONS,
        ticks=FLEET_TICKS,
        tick_seconds=FLEET_TICK_SECONDS,
        representatives=FLEET_REPRESENTATIVES,
        catalog_size=FLEET_CATALOG,
        seed=study.calibration.seed,
    )


def sweep(study: MeasurementStudy) -> list[MechanismServingReport]:
    """One fleet run per mechanism in the study's suite (sweep order).

    Each report depends only on the substrate, the mechanism, and the
    pinned config -- never on which other mechanisms are registered --
    so per-block digests stay stable as the registry grows.
    """
    config = fleet_config(study)
    return [
        ClientFleet(study, mechanism, config, obs=study.obs).run()
        for mechanism in study.mechanism_suite
    ]


def serving_blocks(study: MeasurementStudy) -> dict[str, str]:
    """name -> rendered block, the contract behind
    :func:`repro.api.serve.serving_digests`."""
    return {report.mechanism: report.render_block() for report in sweep(study)}


def fault_sweep(study: MeasurementStudy) -> list[dict]:
    """The OCSP fleet under rising flaky-responder probability."""
    config = fleet_config(study)
    rows = []
    for probability in FAULT_SWEEP:
        plan = FaultPlan(seed=config.seed)
        if probability:
            plan.add("*", FaultSpec(FaultKind.FLAKY, probability=probability))
        report = ClientFleet(
            study,
            _ocsp_like(study),
            replace(config, fault_plan=plan),
            obs=study.obs,
        ).run()
        rows.append(
            {
                "probability": probability,
                "p99_ms": report.latency.quantile(0.99),
                "availability": report.availability,
            }
        )
    return rows


def _ocsp_like(study: MeasurementStudy):
    """The OCSP mechanism if swept, else the first network mechanism."""
    for mechanism in study.mechanism_suite:
        if mechanism.name == "ocsp":
            return mechanism
    for mechanism in study.mechanism_suite:
        if mechanism.serve_model().serves_online:
            return mechanism
    return None


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "serving_sweep"):
        reports = sweep(study)
    by_endpoint: dict[str, list[MechanismServingReport]] = {}
    for report in reports:
        by_endpoint.setdefault(report.endpoint, []).append(report)

    with stage(study, "serving_fault_sweep"):
        fault_rows = (
            fault_sweep(study) if _ocsp_like(study) is not None else []
        )

    rendered = "\n\n".join(report.render_block() for report in reports)
    if fault_rows:
        table = format_table(
            ["flaky p", "p99", "availability"],
            [
                [
                    f"{row['probability']:.2f}",
                    f"{row['p99_ms']:,.1f} ms",
                    f"{row['availability']:.2%}",
                ]
                for row in fault_rows
            ],
            title="OCSP responder under flaky faults:",
        )
        rendered = f"{rendered}\n\n{table}"

    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        rendered,
        data={
            "requests": {r.mechanism: r.requests for r in reports},
            "bytes_per_client": {
                r.mechanism: r.bytes_per_client for r in reports
            },
            "p99_ms": {
                r.mechanism: r.latency.quantile(0.99) for r in reports
            },
            "origin_signings": {
                r.mechanism: r.origin_signings for r in reports
            },
            "fault_sweep": fault_rows,
        },
    )

    # Shape comparisons key on endpoint class, never a hard-coded
    # mechanism list, so run --mechanism restrictions degrade gracefully.
    pulled = by_endpoint.get("ocsp", []) + by_endpoint.get("crl", [])
    pushed = by_endpoint.get("aggregate", [])
    if pulled and pushed:
        cheapest_pull = min(r.bytes_per_client for r in pulled)
        dearest_push = max(r.bytes_per_client for r in pushed)
        result.compare(
            "pushed aggregates undercut per-visit pulls on bytes/client",
            "aggregate < pull-per-visit",
            f"{dearest_push:,.0f} vs {cheapest_pull:,.0f} B/client",
            shape_holds=dearest_push < cheapest_pull,
        )
    for report in by_endpoint.get("staple", []):
        hits = sum(s.hits for s in report.cache_stats.values())
        lookups = sum(s.lookups for s in report.cache_stats.values())
        if lookups == 0:
            continue
        result.compare(
            f"{report.mechanism}: staple reuse absorbs handshake load",
            "cache tiers absorb the majority of lookups",
            f"{hits / lookups:.2%} hit rate",
            shape_holds=hits / lookups > 0.50,
        )
    ocsp_reports = by_endpoint.get("ocsp", [])
    for report in by_endpoint.get("issuance", []):
        if not ocsp_reports:
            break
        ocsp_bytes = max(r.origin_bytes for r in ocsp_reports)
        result.compare(
            f"{report.mechanism}: re-issuance outweighs responder signing",
            "signed bytes > cached OCSP responder's",
            f"{report.origin_bytes:,} vs {ocsp_bytes:,} B",
            shape_holds=report.origin_bytes > ocsp_bytes,
        )
    if len(fault_rows) >= 2:
        p99s = [row["p99_ms"] for row in fault_rows]
        avail = [row["availability"] for row in fault_rows]
        result.compare(
            "tail latency monotone under rising fault probability",
            "p99 weakly increasing, availability strictly falling",
            f"p99 {['%.0f' % value for value in p99s]}, "
            f"avail {['%.3f' % value for value in avail]}",
            shape_holds=all(a <= b for a, b in zip(p99s, p99s[1:]))
            and all(a > b for a, b in zip(avail, avail[1:])),
        )
    return result
