"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Comparison", "ExperimentResult"]


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point."""

    metric: str
    paper: str
    measured: str
    #: does the measured value preserve the paper's qualitative shape?
    shape_holds: bool = True


@dataclass
class ExperimentResult:
    """Output of one experiment run."""

    experiment_id: str
    title: str
    rendered: str
    data: dict = field(default_factory=dict)
    comparisons: list[Comparison] = field(default_factory=list)

    def compare(
        self, metric: str, paper: object, measured: object, shape_holds: bool = True
    ) -> None:
        self.comparisons.append(
            Comparison(
                metric=metric,
                paper=str(paper),
                measured=str(measured),
                shape_holds=shape_holds,
            )
        )

    def comparison_table(self) -> str:
        from repro.core.report import format_table

        return format_table(
            ["metric", "paper", "measured", "shape holds"],
            [
                (c.metric, c.paper, c.measured, "yes" if c.shape_holds else "NO")
                for c in self.comparisons
            ],
            title=f"{self.experiment_id}: paper vs measured",
        )

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} ==", self.rendered]
        if self.comparisons:
            parts.append("")
            parts.append(self.comparison_table())
        return "\n".join(parts)
