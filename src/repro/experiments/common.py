"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Comparison", "ExperimentResult", "failure_result", "stage"]


def stage(study, name: str, **attrs):
    """A named stage span inside an experiment's ``run``.

    Usage: ``with stage(study, "revocation_series"): ...`` -- nests under
    the runner's ``experiment`` span, so the flame-table shows where each
    experiment spent its steps (docs/OBSERVABILITY.md).  Free when
    tracing is disabled.
    """
    return study.obs.tracer.span("stage", stage=name, **attrs)


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point."""

    metric: str
    paper: str
    measured: str
    #: does the measured value preserve the paper's qualitative shape?
    shape_holds: bool = True


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    ``error`` is the structured failure record the runner attaches when
    an experiment raises: the run as a whole completes and the report
    shows the failure in place of the figure (docs/ROBUSTNESS.md).
    """

    experiment_id: str
    title: str
    rendered: str
    data: dict = field(default_factory=dict)
    comparisons: list[Comparison] = field(default_factory=list)
    error: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def compare(
        self, metric: str, paper: object, measured: object, shape_holds: bool = True
    ) -> None:
        self.comparisons.append(
            Comparison(
                metric=metric,
                paper=str(paper),
                measured=str(measured),
                shape_holds=shape_holds,
            )
        )

    def comparison_table(self) -> str:
        from repro.core.report import format_table

        return format_table(
            ["metric", "paper", "measured", "shape holds"],
            [
                (c.metric, c.paper, c.measured, "yes" if c.shape_holds else "NO")
                for c in self.comparisons
            ],
            title=f"{self.experiment_id}: paper vs measured",
        )

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} ==", self.rendered]
        if self.comparisons:
            parts.append("")
            parts.append(self.comparison_table())
        return "\n".join(parts)


def failure_result(
    experiment_id: str,
    title: str,
    exc: BaseException,
    partial_trace: list[dict] | None = None,
) -> ExperimentResult:
    """Capture a crashed experiment as a structured failure record.

    ``partial_trace`` is the tracing records emitted while the experiment
    ran (when tracing is enabled): the spans the experiment got through --
    open spans mark where it died -- so a failure in a long run can be
    diagnosed from the result alone (docs/OBSERVABILITY.md).
    """
    import traceback

    tb = traceback.format_exception(type(exc), exc, exc.__traceback__)
    error = {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(tb),
    }
    if partial_trace is not None:
        error["partial_trace"] = partial_trace
    rendered = (
        f"EXPERIMENT FAILED: {error['type']}: {error['message']}\n"
        "(the remaining experiments completed; see the traceback in "
        "result.error['traceback'])"
    )
    return ExperimentResult(
        experiment_id, title, rendered, data={"error": error}, error=error
    )
