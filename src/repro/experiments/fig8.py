"""Figure 8: CRLSet entry count over time."""

from __future__ import annotations

import datetime

from repro.core.pipeline import MeasurementStudy
from repro.core.report import render_series
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "fig8"
TITLE = "CRLSet size over time (Figure 8)"


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "crlset_dynamics"):
        dynamics = study.crlset_dynamics()
    series = dynamics.entry_count_series
    cal = study.calibration

    sampled = sorted(series)[::14]
    rendered = render_series(
        [(day, float(series[day])) for day in sampled],
        title="CRLSet entries (fortnightly sampling)",
        value_format="{:,.0f}",
    )

    removal = cal.crlset_parent_removal_date
    before_removal = series[removal - datetime.timedelta(days=2)]
    after_removal = series[removal + datetime.timedelta(days=2)]
    peak = dynamics.max_entries
    end = series[max(series)]

    result = ExperimentResult(
        EXPERIMENT_ID, TITLE, rendered, data={"series": series}
    )
    targets = study.targets
    result.compare(
        "entry count range",
        f"{targets.crlset_min_entries:,}-{targets.crlset_max_entries:,}",
        f"{dynamics.min_entries:,}-{dynamics.max_entries:,}",
        shape_holds=2_000 <= dynamics.min_entries
        and dynamics.max_entries <= 60_000,
    )
    result.compare(
        "peak during Heartbleed wave", "peak ~Apr-May 2014",
        f"peak {peak:,}",
        shape_holds=max(series, key=series.get)
        <= datetime.date(2014, 6, 15),
    )
    result.compare(
        "sharp drop at parent removal", "-5,774 entries (May-Jun 2014)",
        f"{before_removal:,} -> {after_removal:,}",
        shape_holds=after_removal < before_removal * 0.9,
    )
    result.compare(
        "net decline from peak by >1/4", "24,904 -> ~16,000",
        f"{peak:,} -> {end:,}",
        shape_holds=end < peak * 0.8,
    )
    return result
