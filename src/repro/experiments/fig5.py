"""Figure 5: CRL entry count vs byte size (linear, ~38 bytes/entry)."""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "fig5"
TITLE = "CRL entries vs CRL size scatter (Figure 5)"


def run(study: MeasurementStudy) -> ExperimentResult:
    at = study.calibration.measurement_end
    with stage(study, "crl_sizes"):
        sizes = study.crl_sizes(at)
        counts = study.crl_entry_counts(at)

    points = [
        (counts[url], sizes[url]) for url in sizes if counts[url] > 0
    ]
    entries = np.array([p[0] for p in points], dtype=float)
    size_bytes = np.array([p[1] for p in points], dtype=float)

    # Least-squares slope through large CRLs (small ones are dominated by
    # the fixed signature/header overhead, as in the paper's scatter).
    large = entries >= 100
    if large.sum() >= 2:
        slope, intercept = np.polyfit(entries[large], size_bytes[large], 1)
    else:
        slope, intercept = float("nan"), float("nan")
    correlation = float(np.corrcoef(np.log10(entries), np.log10(size_bytes))[0, 1])

    sample_rows = sorted(points)[:: max(1, len(points) // 15)]
    rendered = format_table(
        ["entries", "size (bytes)", "bytes/entry"],
        [
            (n, s, f"{s / n:.1f}" if n else "-")
            for n, s in sample_rows
        ],
        title=f"sampled scatter points (n={len(points)} CRLs)",
    )
    rendered += (
        f"\n\nfit over CRLs with >=100 entries: "
        f"{slope:.1f} bytes/entry + {intercept:.0f} B overhead; "
        f"log-log correlation r={correlation:.3f}"
    )

    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        rendered,
        data={"points": points, "slope": float(slope), "correlation": correlation},
    )
    targets = study.targets
    result.compare(
        "bytes per CRL entry", f"~{targets.crl_bytes_per_entry:.0f} B",
        f"{slope:.1f} B", shape_holds=20 <= slope <= 60,
    )
    result.compare(
        "strong linear relationship", "linear scatter",
        f"r={correlation:.3f}", shape_holds=correlation > 0.95,
    )
    return result
