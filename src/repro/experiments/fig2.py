"""Figure 2: fraction of fresh and alive certificates revoked over time."""

from __future__ import annotations

import datetime

from repro.core.pipeline import MeasurementStudy
from repro.core.report import render_series
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "fig2"
TITLE = "Fresh/alive certificates revoked over time (Figure 2)"

_PRE_HEARTBLEED = datetime.date(2014, 3, 5)


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "revocation_series"):
        series = study.revocation_series()
    targets = study.targets

    final = len(series.dates) - 1
    pre_index = max(
        i for i, day in enumerate(series.dates) if day <= _PRE_HEARTBLEED
    )
    peak_day, peak_value = series.peak_fresh_revoked()

    fresh_rendered = render_series(
        [
            (day, value)
            for day, value in zip(series.dates, series.fresh_revoked_all)
        ][::4],
        title="fraction of FRESH certs revoked (all), 4-week sampling",
        value_format="{:.3%}",
    )
    alive_rendered = render_series(
        [
            (day, value)
            for day, value in zip(series.dates, series.alive_revoked_all)
        ][::4],
        title="fraction of ALIVE certs revoked (all), 4-week sampling",
        value_format="{:.3%}",
    )
    rendered = fresh_rendered + "\n\n" + alive_rendered

    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        rendered,
        data={
            "dates": series.dates,
            "fresh_revoked_all": series.fresh_revoked_all,
            "fresh_revoked_ev": series.fresh_revoked_ev,
            "alive_revoked_all": series.alive_revoked_all,
            "alive_revoked_ev": series.alive_revoked_ev,
        },
    )
    fresh_end = series.fresh_revoked_all[final]
    alive_end = series.alive_revoked_all[final]
    ev_end = series.fresh_revoked_ev[final]
    pre = series.fresh_revoked_all[pre_index]
    result.compare(
        "fresh revoked at end", f">{targets.fresh_revoked_at_end:.0%}",
        f"{fresh_end:.2%}", shape_holds=0.05 <= fresh_end <= 0.13,
    )
    result.compare(
        "fresh revoked pre-Heartbleed", f"~{targets.fresh_revoked_pre_heartbleed:.0%}",
        f"{pre:.2%}", shape_holds=0.002 <= pre <= 0.025,
    )
    result.compare(
        "alive revoked at end", f"~{targets.alive_revoked_at_end:.1%}",
        f"{alive_end:.2%}", shape_holds=0.003 <= alive_end <= 0.015,
    )
    result.compare(
        "EV fresh revoked at end", f">{targets.ev_fresh_revoked_at_end:.0%}",
        f"{ev_end:.2%}", shape_holds=0.03 <= ev_end <= 0.13,
    )
    result.compare(
        "Heartbleed spike visible",
        "spike in Apr-May 2014",
        f"peak {peak_value:.2%} on {peak_day}",
        shape_holds=(
            peak_value >= 3 * pre
            and datetime.date(2014, 4, 1) <= peak_day <= datetime.date(2014, 9, 1)
        ),
    )
    return result
