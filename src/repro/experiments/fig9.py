"""Figure 9: daily CRL vs CRLSet entry additions."""

from __future__ import annotations

from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "fig9"
TITLE = "Daily new revocations: CRLs vs CRLSets (Figure 9)"


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "crlset_dynamics"):
        dynamics = study.crlset_dynamics()
    cal = study.calibration

    crl = dynamics.crl_daily_additions
    crlset = dynamics.crlset_daily_additions
    sample_days = sorted(crl)[::7]
    rendered = format_table(
        ["date", "weekday", "CRL additions", "CRLSet additions"],
        [
            (day, day.strftime("%a"), crl[day], crlset.get(day, 0))
            for day in sample_days
        ],
        title="weekly samples over the crawl window",
    )

    crl_mean = sum(crl.values()) / len(crl)
    crlset_mean = sum(crlset.values()) / max(1, len(crlset))
    gap_days = [
        day
        for day in crlset
        if cal.crlset_gap_start <= day < cal.crlset_gap_end
    ]
    gap_additions = sum(crlset[day] for day in gap_days)

    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        rendered,
        data={"crl": crl, "crlset": crlset},
    )
    result.compare(
        "CRL additions dwarf CRLSet additions", "orders of magnitude",
        f"{crl_mean:,.0f}/day vs {crlset_mean:,.1f}/day",
        shape_holds=crl_mean > 5 * max(crlset_mean, 0.1),
    )
    result.compare(
        "weekly (weekday/weekend) pattern in CRL additions",
        "visible lulls on weekends",
        f"weekday/weekend ratio {dynamics.weekly_pattern_ratio():.1f}x",
        shape_holds=dynamics.weekly_pattern_ratio() > 1.5,
    )
    result.compare(
        "CRLSet update gap in Nov-Dec 2014", "two weeks with no additions",
        f"{gap_additions} additions during the gap",
        shape_holds=gap_additions == 0,
    )
    return result
