"""Experiment modules: one per table/figure in the paper's evaluation.

Each module exposes ``run(study) -> ExperimentResult``; the result bundles
the structured data, a rendered plain-text figure/table, and a
paper-vs-measured comparison (the basis of EXPERIMENTS.md).
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.runner import ALL_EXPERIMENTS, run_all, run_experiment

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult", "run_all", "run_experiment"]
