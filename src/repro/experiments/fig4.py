"""Figure 4: fraction of new certificates carrying CRL/OCSP pointers."""

from __future__ import annotations

import datetime

from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "fig4"
TITLE = "Revocation information in new certificates over time (Figure 4)"


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "revocation_info_by_issue_month"):
        series = study.revocation_info_by_issue_month()
    months = sorted(series)

    rows = [
        (month.isoformat(), f"{series[month]['crl']:.3f}",
         f"{series[month]['ocsp']:.3f}", int(series[month]["count"]))
        for month in months
        if month.month in (1, 4, 7, 10)  # quarterly sampling for display
    ]
    rendered = format_table(
        ["issue month", "frac with CRL", "frac with OCSP", "new certs"], rows
    )

    def window_mean(protocol: str, start: datetime.date, end: datetime.date) -> float:
        values = [
            series[m][protocol] for m in months if start <= m <= end and series[m]["count"] >= 5
        ]
        return sum(values) / len(values) if values else 0.0

    early_ocsp = window_mean("ocsp", datetime.date(2011, 1, 1), datetime.date(2012, 6, 1))
    late_ocsp = window_mean("ocsp", datetime.date(2014, 1, 1), datetime.date(2015, 3, 1))
    crl_always = window_mean("crl", datetime.date(2011, 1, 1), datetime.date(2015, 3, 1))

    # The RapidSSL step: OCSP inclusion jump around July 2012.
    before = window_mean("ocsp", datetime.date(2012, 1, 1), datetime.date(2012, 6, 30))
    after = window_mean("ocsp", datetime.date(2012, 8, 1), datetime.date(2013, 1, 31))

    result = ExperimentResult(
        EXPERIMENT_ID, TITLE, rendered, data={"series": series}
    )
    result.compare(
        "CRL inclusion ~constant high", ">95% since 2011", f"{crl_always:.1%}",
        shape_holds=crl_always > 0.95,
    )
    result.compare(
        "OCSP inclusion rises", "~70-85% (2011) -> ~99% (2014+)",
        f"{early_ocsp:.1%} -> {late_ocsp:.1%}",
        shape_holds=late_ocsp > early_ocsp and late_ocsp > 0.93,
    )
    result.compare(
        "RapidSSL OCSP step at Jul 2012", "visible spike",
        f"{before:.1%} -> {after:.1%}", shape_holds=after - before > 0.05,
    )
    return result
