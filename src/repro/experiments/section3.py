"""§3 dataset composition: Leaf/Intermediate Sets and revocation pointers."""

from __future__ import annotations

from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_table
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "section3"
TITLE = "Dataset composition (paper §3)"


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "dataset_summary"):
        summary = study.dataset_summary()
    targets = study.targets
    scale = study.calibration.scale

    rows = [
        ("unique certs seen", f"{targets.unique_certs_seen:,}",
         f"{summary['unique_certs_seen']:,.0f}"),
        ("Leaf Set size", f"{targets.leaf_set_size:,}",
         f"{summary['leaf_set_size']:,.0f}"),
        ("alive in last scan", f"{targets.leaf_alive_in_last_scan_fraction:.1%}",
         f"{summary['alive_in_last_scan_fraction']:.1%}"),
        ("Intermediate Set size", f"{targets.intermediate_set_size:,}",
         f"{summary['intermediate_set_size']:,.0f}"),
        ("root store size", f"{targets.root_store_size}",
         f"{summary['root_store_size']:.0f}"),
        ("leaf certs with CRL", f"{targets.leaf_with_crl:.1%}",
         f"{summary['leaf_with_crl']:.1%}"),
        ("leaf certs with OCSP", f"{targets.leaf_with_ocsp:.1%}",
         f"{summary['leaf_with_ocsp']:.1%}"),
        ("leaf certs with neither", f"{targets.leaf_with_neither:.2%}",
         f"{summary['leaf_with_neither']:.2%}"),
        ("intermediates with CRL", f"{targets.intermediate_with_crl:.1%}",
         f"{summary['intermediate_with_crl']:.1%}"),
        ("intermediates with OCSP", f"{targets.intermediate_with_ocsp:.1%}",
         f"{summary['intermediate_with_ocsp']:.1%}"),
        ("unique CRLs", f"{targets.unique_crls:,}", f"{summary['unique_crls']:.0f}"),
        ("unique OCSP responders", f"{targets.unique_ocsp_responders}",
         f"{summary['unique_ocsp_responders']:.0f}"),
    ]
    rendered = format_table(
        ["metric", "paper (full scale)", f"measured (scale={scale})"], rows
    )
    result = ExperimentResult(EXPERIMENT_ID, TITLE, rendered, data=summary)
    result.compare(
        "leaf CRL inclusion",
        f"{targets.leaf_with_crl:.1%}",
        f"{summary['leaf_with_crl']:.1%}",
        shape_holds=summary["leaf_with_crl"] > 0.98,
    )
    result.compare(
        "leaf OCSP inclusion",
        f"{targets.leaf_with_ocsp:.1%}",
        f"{summary['leaf_with_ocsp']:.1%}",
        shape_holds=abs(summary["leaf_with_ocsp"] - targets.leaf_with_ocsp) < 0.05,
    )
    result.compare(
        "never-revocable leaves",
        f"{targets.leaf_with_neither:.2%}",
        f"{summary['leaf_with_neither']:.2%}",
        shape_holds=summary["leaf_with_neither"] < 0.01,
    )
    return result
