"""Figure 6: CDF of CRL sizes, raw and weighted by certificate."""

from __future__ import annotations

from repro.core.pipeline import MeasurementStudy
from repro.core.report import render_cdf
from repro.core.stats import Cdf, weighted_cdf
from repro.experiments.common import ExperimentResult, stage

EXPERIMENT_ID = "fig6"
TITLE = "CRL size distribution, raw vs weighted (Figure 6)"


def run(study: MeasurementStudy) -> ExperimentResult:
    at = study.calibration.measurement_end
    with stage(study, "crl_sizes"):
        sizes = study.crl_sizes(at)
    crls = {crl.url: crl for crl in study.ecosystem.crls}

    raw = Cdf.from_values(sizes.values())
    weighted = weighted_cdf(
        (sizes[url], crls[url].assigned_cert_count) for url in sizes
    )

    rendered = (
        render_cdf(raw, title="RAW CDF of CRL sizes (bytes)", value_format="{:,.0f}")
        + "\n\n"
        + render_cdf(
            weighted,
            title="WEIGHTED (per certificate) CDF of CRL sizes (bytes)",
            value_format="{:,.0f}",
        )
    )
    raw_median_kb = raw.median / 1024
    weighted_median_kb = weighted.median / 1024
    max_mb = max(sizes.values()) / (1 << 20)
    rendered += (
        f"\n\nraw median {raw_median_kb:.2f} KB | weighted median "
        f"{weighted_median_kb:.1f} KB | max {max_mb:.1f} MB"
    )

    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        rendered,
        data={
            "raw": raw,
            "weighted": weighted,
            "raw_median_kb": raw_median_kb,
            "weighted_median_kb": weighted_median_kb,
            "max_mb": max_mb,
        },
    )
    targets = study.targets
    result.compare(
        "raw median CRL size", f"<1 KB (~{targets.raw_median_crl_kb} KB)",
        f"{raw_median_kb:.2f} KB", shape_holds=raw_median_kb < 2.0,
    )
    result.compare(
        "weighted median CRL size", f"{targets.weighted_median_crl_kb:.0f} KB",
        f"{weighted_median_kb:.1f} KB",
        shape_holds=20 <= weighted_median_kb <= 250,
    )
    result.compare(
        "weighted >> raw (the paper's point)", ">50x gap",
        f"{weighted_median_kb / max(raw_median_kb, 1e-9):.0f}x",
        shape_holds=weighted_median_kb / max(raw_median_kb, 1e-9) > 20,
    )
    result.compare(
        "largest CRL", f"{targets.max_crl_mb:.0f} MB", f"{max_mb:.1f} MB",
        shape_holds=max_mb > 20,
    )
    return result
