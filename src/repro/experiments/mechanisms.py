"""Mechanism sweep: every registered revocation mechanism, one substrate.

The registry (:mod:`repro.mechanisms`, docs/MECHANISMS.md) is the only
source of what gets compared here: the paper's four mechanisms and the
post-2015 scenario pack (PAPERS.md) are measured side by side on
payload size, revoked-certificate coverage, vulnerability windows, and
per-session client cost.  Each mechanism's rendered block is digested
separately (``tests/experiments/golden/mechanisms-*.json``), so a
refactor of one mechanism is provably byte-neutral for the others.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import SessionCost, SessionCostModel
from repro.core.pipeline import MeasurementStudy
from repro.core.report import format_bytes
from repro.experiments.common import ExperimentResult, stage
from repro.mechanisms import Delivery, RevocationMechanism
from repro.revocation.checker import CheckOutcome

EXPERIMENT_ID = "mechanisms"
TITLE = "Revocation mechanisms compared on one substrate (scenario pack)"

#: sites per priced browsing session (matches bench_session_cost).
SESSION_SITES = 100


@dataclass(frozen=True)
class MechanismStats:
    """One mechanism's sweep row."""

    mechanism: RevocationMechanism
    payload_bytes: int
    revoked_total: int
    revoked_covered: int
    revoked_flagged_at_end: int
    mean_window_days: float
    session: SessionCost

    @property
    def name(self) -> str:
        return self.mechanism.name

    @property
    def coverage(self) -> float:
        return self.revoked_covered / self.revoked_total if self.revoked_total else 0.0

    @property
    def flagged_fraction(self) -> float:
        return (
            self.revoked_flagged_at_end / self.revoked_total
            if self.revoked_total
            else 0.0
        )


def sweep(study: MeasurementStudy) -> list[MechanismStats]:
    """Measure every mechanism in the study's suite (registry order).

    Each row depends only on the substrate and the mechanism itself --
    never on which other mechanisms are registered -- so the per-block
    digests stay stable as the registry grows.
    """
    end = study.calibration.measurement_end
    revoked = [
        leaf
        for leaf in study.ecosystem.leaves
        if leaf.revoked_at is not None and leaf.revoked_at <= end
    ]
    model = SessionCostModel(study.ecosystem)
    sites = model.sample_sites(SESSION_SITES)
    rows = []
    for mechanism in study.mechanism_suite:
        covered = [leaf for leaf in revoked if mechanism.covers(leaf)]
        flagged = sum(
            1
            for leaf in revoked
            if mechanism.lookup(leaf, end) is CheckOutcome.REVOKED
        )
        windows = [
            mechanism.vulnerability_window_days(leaf) for leaf in revoked
        ]
        rows.append(
            MechanismStats(
                mechanism=mechanism,
                payload_bytes=mechanism.payload_bytes(end),
                revoked_total=len(revoked),
                revoked_covered=len(covered),
                revoked_flagged_at_end=flagged,
                mean_window_days=(
                    sum(windows) / len(windows) if windows else 0.0
                ),
                session=model.session_for(sites, mechanism),
            )
        )
    return rows


def render_block(stats: MechanismStats) -> str:
    """One mechanism's report block (the golden-digest unit)."""
    mechanism = stats.mechanism
    model = mechanism.update_model()
    session = stats.session
    lines = [
        f"-- {mechanism.name}: {mechanism.title} --",
        f"delivery          {mechanism.delivery.value}"
        + ("  (network at connection time)" if mechanism.uses_network else ""),
        f"staleness window  {model.staleness_window_days:.1f} days"
        f" (update every {model.update_interval_days:.1f}"
        f" + {model.propagation_lag_days:.1f} propagation)",
        f"payload           {format_bytes(stats.payload_bytes)}",
        f"revoked coverage  {stats.coverage:.1%} of"
        f" {stats.revoked_total} revoked certs"
        f" ({stats.flagged_fraction:.1%} flagged at measurement end)",
        f"mean vuln window  {stats.mean_window_days:.1f} days",
        f"session cost      {session.checks} fetches,"
        f" {format_bytes(session.bytes_downloaded)}"
        f" / {SESSION_SITES} sites,"
        f" {session.latency_per_site_ms:.0f} ms/site,"
        f" {session.cache_hits} cache hits",
    ]
    return "\n".join(lines)


def mechanism_blocks(study: MeasurementStudy) -> dict[str, str]:
    """name -> rendered block, the contract behind
    :func:`repro.api.study.mechanism_digests`."""
    return {stats.name: render_block(stats) for stats in sweep(study)}


def run(study: MeasurementStudy) -> ExperimentResult:
    with stage(study, "mechanism_sweep"):
        rows = sweep(study)
    by_delivery: dict[Delivery, list[MechanismStats]] = {}
    for stats in rows:
        by_delivery.setdefault(stats.mechanism.delivery, []).append(stats)

    rendered = "\n\n".join(render_block(stats) for stats in rows)
    result = ExperimentResult(
        EXPERIMENT_ID,
        TITLE,
        rendered,
        data={
            "payload_bytes": {s.name: s.payload_bytes for s in rows},
            "coverage": {s.name: s.coverage for s in rows},
            "mean_window_days": {s.name: s.mean_window_days for s in rows},
            "session_bytes": {
                s.name: s.session.bytes_downloaded for s in rows
            },
        },
    )

    # Shape comparisons are keyed on *delivery class*, never on a
    # hard-coded mechanism list, so a restricted sweep (run_one's
    # mechanism= filter) degrades gracefully.
    pulled = by_delivery.get(Delivery.PULL_PER_CA, [])
    pushed = by_delivery.get(Delivery.PUSHED, [])
    if pulled and pushed:
        corpus = max(s.payload_bytes for s in pulled)
        largest_push = max(s.payload_bytes for s in pushed)
        ratio = corpus / largest_push if largest_push else float("inf")
        result.compare(
            "pushed aggregates vs the pulled CRL corpus",
            "orders of magnitude smaller (arXiv:2102.04288)",
            f"largest push {ratio:.0f}x smaller",
            shape_holds=ratio > 2,
        )
    offline = [
        s
        for s in rows
        if not s.mechanism.uses_network
        and s.mechanism.delivery is not Delivery.PULL_PER_CERT
    ]
    if offline:
        worst = max(s.session.bytes_downloaded for s in offline)
        result.compare(
            "pushed/lifetime mechanisms cost no per-site fetches",
            "0 bytes",
            format_bytes(worst),
            shape_holds=worst == 0,
        )
    exact = [s for s in rows if s.revoked_covered == s.revoked_total]
    partial = [s for s in rows if s.revoked_covered < s.revoked_total]
    if exact and partial:
        result.compare(
            "full-enrollment mechanisms beat curated-list coverage",
            "CRLite/postcertificates cover every revoked cert",
            f"{len(exact)} mechanism(s) at 100% vs best curated "
            f"{max(s.coverage for s in partial):.1%}",
            shape_holds=max(s.coverage for s in partial) < 1.0,
        )
    lifetime = by_delivery.get(Delivery.LIFETIME, [])
    for stats in lifetime:
        bound = stats.mechanism.update_model().staleness_window_days
        result.compare(
            "lifetime-bounded vulnerability window",
            f"<= {bound:.0f}-day certificate lifetime",
            f"mean {stats.mean_window_days:.1f} days",
            shape_holds=stats.mean_window_days <= bound,
        )
    return result
