"""Exact DER size arithmetic for CRLs.

The paper's CRL corpus holds 11.46 M revocation entries; most belong to
certificates never observed in scans.  Materialising every entry as a
Python object would be wasteful, so large CRLs carry a *hidden entry
count* and their byte size is computed with exact DER length arithmetic
instead of encoding.  DER is deterministic, so the arithmetic is exact --
``tests/revocation/test_sizing.py`` asserts it equals ``len(to_der())``
for fully materialised CRLs.
"""

from __future__ import annotations

import datetime

from repro.asn1 import der
from repro.pki.name import Name
from repro.revocation.crl import RevokedEntry
from repro.revocation.reason import ReasonCode

__all__ = [
    "estimated_crl_size",
    "length_octets",
    "representative_entry_size",
    "tlv_size",
]


def length_octets(content_length: int) -> int:
    """Number of bytes DER spends on a definite length field."""
    if content_length < 0x80:
        return 1
    return 1 + (content_length.bit_length() + 7) // 8


def tlv_size(content_length: int) -> int:
    """Total size of a TLV whose content is ``content_length`` bytes."""
    return 1 + length_octets(content_length) + content_length


def representative_entry_size(
    serial_bytes: int, with_reason: bool = False
) -> int:
    """Encoded size of a CRL entry whose serial occupies ``serial_bytes``.

    Computed by encoding a real representative entry, so it tracks the
    actual encoder rather than a hand-maintained formula.
    """
    if serial_bytes < 1:
        raise ValueError("serial_bytes must be >= 1")
    # Largest positive integer with that content width (high bit clear).
    serial = (1 << (serial_bytes * 8 - 2)) | 1
    when = datetime.datetime(2014, 6, 15, 12, 0, 0, tzinfo=datetime.timezone.utc)
    entry = RevokedEntry(
        serial_number=serial,
        revocation_date=when,
        reason=ReasonCode.UNSPECIFIED if with_reason else None,
    )
    return len(entry.to_der())


def estimated_crl_size(
    issuer: Name,
    signature_size: int,
    signature_algorithm_oid: str,
    materialized_entry_bytes: int,
    hidden_entry_count: int,
    hidden_entry_size: int,
    crl_number: int = 1,
) -> int:
    """Exact byte size of the DER encoding of a CRL with
    ``materialized_entry_bytes`` of real entries plus ``hidden_entry_count``
    synthetic entries of ``hidden_entry_size`` bytes each.

    Mirrors :meth:`CertificateRevocationList.to_der` structurally.
    """
    if hidden_entry_count < 0 or materialized_entry_bytes < 0:
        raise ValueError("entry sizes must be non-negative")
    algorithm = len(
        der.encode_sequence(der.encode_oid(signature_algorithm_oid), der.encode_null())
    )
    version = len(der.encode_integer(1))
    issuer_len = len(issuer.to_der())
    times = 2 * len(
        der.encode_utc_time(
            datetime.datetime(2014, 6, 15, tzinfo=datetime.timezone.utc)
        )
    )
    entries_content = materialized_entry_bytes + hidden_entry_count * hidden_entry_size
    entries_seq = tlv_size(entries_content) if entries_content else 0
    crl_number_ext = len(
        der.encode_sequence(
            der.encode_oid("2.5.29.20"),
            der.encode_octet_string(der.encode_integer(crl_number)),
        )
    )
    ext_block = tlv_size(tlv_size(crl_number_ext))  # [0] EXPLICIT SEQUENCE
    tbs_content = version + algorithm + issuer_len + times + entries_seq + ext_block
    tbs = tlv_size(tbs_content)
    signature_bits = tlv_size(1 + signature_size)  # BIT STRING pad byte
    outer_content = tbs + algorithm + signature_bits
    return tlv_size(outer_content)
