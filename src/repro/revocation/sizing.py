"""Exact DER size arithmetic for CRLs.

The paper's CRL corpus holds 11.46 M revocation entries; most belong to
certificates never observed in scans.  Materialising every entry as a
Python object would be wasteful, so large CRLs carry a *hidden entry
count* and their byte size is computed with exact DER length arithmetic
instead of encoding.  DER is deterministic, so the arithmetic is exact --
``tests/revocation/test_sizing.py`` asserts it equals ``len(to_der())``
for fully materialised CRLs.

Fast paths used by the incremental crawl engine:

- :func:`revoked_entry_size` computes one entry's encoded size from its
  serial number alone (no encoding);
- :class:`CrlSizeModel` caches a CRL's fixed overhead (issuer name,
  algorithm, extension block) once, so a daily size series costs one
  addition per day instead of re-encoding the TBS.

Both are property-tested byte-identical to the slow ``to_der()`` path in
``tests/revocation/test_der_fastpath.py``.
"""

from __future__ import annotations

import datetime
from functools import lru_cache

from repro.asn1 import der
from repro.pki.name import Name
from repro.revocation.crl import RevokedEntry
from repro.revocation.reason import ReasonCode

__all__ = [
    "CrlSizeModel",
    "estimated_crl_size",
    "length_octets",
    "representative_entry_size",
    "revoked_entry_size",
    "tlv_size",
]


def length_octets(content_length: int) -> int:
    """Number of bytes DER spends on a definite length field."""
    if content_length < 0x80:
        return 1
    return 1 + (content_length.bit_length() + 7) // 8


def tlv_size(content_length: int) -> int:
    """Total size of a TLV whose content is ``content_length`` bytes."""
    return 1 + length_octets(content_length) + content_length


#: Encoded size of the reasonCode crlEntryExtensions block.  Reason codes
#: are 0-10, so the inner ENUMERATED is always one content octet and the
#: whole block has a fixed size; computed from the real encoders once.
_REASON_EXT_SIZE = len(
    der.encode_sequence(
        der.encode_sequence(
            der.encode_oid("2.5.29.21"),
            der.encode_octet_string(
                der.encode_tlv(der.Tag.ENUMERATED, b"\x00")
            ),
        )
    )
)

#: UTCTime TLV is 15 bytes, GeneralizedTime TLV is 17 (fixed-width fields).
_UTC_TIME_SIZE = 15
_GENERALIZED_TIME_SIZE = 17


def revoked_entry_size(
    serial_number: int,
    with_reason: bool = False,
    generalized_time: bool = False,
) -> int:
    """Exact encoded size of one CRL entry, without encoding it.

    ``generalized_time`` selects the 17-byte GeneralizedTime form used for
    revocation dates past 2049 (cf. ``repro.revocation.crl._encode_time``).
    """
    if serial_number >= 0:
        serial_tlv = tlv_size(serial_number.bit_length() // 8 + 1)
    else:  # negative serials never occur in practice; fall back to encoding
        serial_tlv = len(der.encode_integer(serial_number))
    content = (
        serial_tlv
        + (_GENERALIZED_TIME_SIZE if generalized_time else _UTC_TIME_SIZE)
        + (_REASON_EXT_SIZE if with_reason else 0)
    )
    return tlv_size(content)


@lru_cache(maxsize=None)
def representative_entry_size(
    serial_bytes: int, with_reason: bool = False
) -> int:
    """Encoded size of a CRL entry whose serial occupies ``serial_bytes``.

    Computed by encoding a real representative entry, so it tracks the
    actual encoder rather than a hand-maintained formula.
    """
    if serial_bytes < 1:
        raise ValueError("serial_bytes must be >= 1")
    # Largest positive integer with that content width (high bit clear).
    serial = (1 << (serial_bytes * 8 - 2)) | 1
    when = datetime.datetime(2014, 6, 15, 12, 0, 0, tzinfo=datetime.timezone.utc)
    entry = RevokedEntry(
        serial_number=serial,
        revocation_date=when,
        reason=ReasonCode.UNSPECIFIED if with_reason else None,
    )
    return len(entry.to_der())


class CrlSizeModel:
    """Incremental, exact CRL byte-size arithmetic.

    Precomputes every fixed-size component of a CRL's DER encoding
    (version, algorithm identifier, issuer name, thisUpdate/nextUpdate,
    crlNumber extension block, signature BIT STRING) once; ``size()`` then
    needs only the current total of entry bytes.  A daily size series
    therefore updates from the previous day's entry-byte total plus the
    delta entries instead of re-encoding the full TBS.

    Mirrors :meth:`CertificateRevocationList.to_der` structurally.
    """

    __slots__ = ("_fixed_tbs_content", "_algorithm", "_signature_bits")

    def __init__(
        self,
        issuer: Name,
        signature_size: int,
        signature_algorithm_oid: str,
        crl_number: int = 1,
        this_update: datetime.datetime | None = None,
        next_update: datetime.datetime | None = None,
    ) -> None:
        algorithm = len(
            der.encode_sequence(
                der.encode_oid(signature_algorithm_oid), der.encode_null()
            )
        )
        version = len(der.encode_integer(1))
        issuer_len = len(issuer.to_der())
        times = sum(
            _GENERALIZED_TIME_SIZE
            if when is not None and when.year > 2049
            else _UTC_TIME_SIZE
            for when in (this_update, next_update)
        )
        crl_number_ext = len(
            der.encode_sequence(
                der.encode_oid("2.5.29.20"),
                der.encode_octet_string(der.encode_integer(crl_number)),
            )
        )
        ext_block = tlv_size(tlv_size(crl_number_ext))  # [0] EXPLICIT SEQUENCE
        self._fixed_tbs_content = version + algorithm + issuer_len + times + ext_block
        self._algorithm = algorithm
        self._signature_bits = tlv_size(1 + signature_size)  # BIT STRING pad

    def size(self, entry_bytes: int) -> int:
        """Exact CRL size with ``entry_bytes`` of revokedCertificates
        content (0 means the optional SEQUENCE is omitted entirely)."""
        if entry_bytes < 0:
            raise ValueError("entry_bytes must be non-negative")
        entries_seq = tlv_size(entry_bytes) if entry_bytes else 0
        tbs = tlv_size(self._fixed_tbs_content + entries_seq)
        return tlv_size(tbs + self._algorithm + self._signature_bits)


def estimated_crl_size(
    issuer: Name,
    signature_size: int,
    signature_algorithm_oid: str,
    materialized_entry_bytes: int,
    hidden_entry_count: int,
    hidden_entry_size: int,
    crl_number: int = 1,
) -> int:
    """Exact byte size of the DER encoding of a CRL with
    ``materialized_entry_bytes`` of real entries plus ``hidden_entry_count``
    synthetic entries of ``hidden_entry_size`` bytes each.

    One-shot convenience over :class:`CrlSizeModel`.
    """
    if hidden_entry_count < 0 or materialized_entry_bytes < 0:
        raise ValueError("entry sizes must be non-negative")
    model = CrlSizeModel(
        issuer=issuer,
        signature_size=signature_size,
        signature_algorithm_oid=signature_algorithm_oid,
        crl_number=crl_number,
    )
    return model.size(
        materialized_entry_bytes + hidden_entry_count * hidden_entry_size
    )
