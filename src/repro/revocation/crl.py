"""Certificate Revocation Lists (RFC 5280 §5).

A :class:`CertificateRevocationList` is the signed list of
(serial number, revocation date, reason) entries that a CA publishes.  DER
encoding is implemented for real so the study's CRL byte-size measurements
(Figures 5-6, Table 1; ~38 bytes/entry) fall out of actual encodings.
"""

from __future__ import annotations

import datetime
import os
from dataclasses import dataclass

from repro.asn1 import der
from repro.asn1.oid import OID
from repro.pki.keys import KeyPair, SignatureBackend, default_backend
from repro.pki.name import Name
from repro.revocation.reason import ReasonCode

__all__ = ["CertificateRevocationList", "RevokedEntry"]

_UTC = datetime.timezone.utc

# RFC 5280 TBSCertList context tag: crlExtensions [0].
_CTX_CRL_EXTENSIONS = 0

#: When set, every arithmetic ``encoded_size`` is cross-checked against a
#: full re-encoding (slow; for debugging the DER fast path only).
_DER_CHECK = bool(os.environ.get("REPRO_DER_CHECK"))


def _encode_time(when: datetime.datetime) -> bytes:
    if when.year <= 2049:
        return der.encode_utc_time(when)
    return der.encode_generalized_time(when)


@dataclass(frozen=True)
class RevokedEntry:
    """One revoked certificate in a CRL."""

    serial_number: int
    revocation_date: datetime.datetime
    reason: ReasonCode | None = None

    def to_der(self) -> bytes:
        parts = [
            der.encode_integer(self.serial_number),
            _encode_time(self.revocation_date),
        ]
        if self.reason is not None:
            reason_value = der.encode_tlv(
                der.Tag.ENUMERATED, bytes([int(self.reason)])
            )
            ext = der.encode_sequence(
                der.encode_oid(OID.CRL_REASON),
                der.encode_octet_string(reason_value),
            )
            parts.append(der.encode_sequence(ext))
        return der.encode_sequence(*parts)

    @classmethod
    def from_der_node(cls, node: der.DecodedValue) -> "RevokedEntry":
        serial = node.children[0].as_integer()
        revoked_at = node.children[1].as_datetime()
        reason: ReasonCode | None = None
        if len(node.children) > 2:
            for ext in node.children[2].children:
                if ext.children[0].as_oid() == OID.CRL_REASON:
                    inner = der.decode_all(ext.children[1].value)
                    reason = ReasonCode(inner.as_integer())
        return cls(serial_number=serial, revocation_date=revoked_at, reason=reason)


@dataclass(frozen=True)
class CertificateRevocationList:
    """A signed CRL.

    ``url`` is carried alongside (not part of the DER) so analyses can join
    CRLs with the distribution points found in certificates.
    """

    issuer: Name
    this_update: datetime.datetime
    next_update: datetime.datetime
    entries: tuple[RevokedEntry, ...]
    crl_number: int
    signature_algorithm_oid: str
    signature: bytes
    url: str = ""

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def _serial_index(self) -> dict[int, RevokedEntry]:
        """serial -> entry, built once per instance.

        The dataclass is frozen and ``entries`` is a tuple, so the index
        can never go stale; mutation means constructing a new CRL, which
        starts with a fresh (unbuilt) index.
        """
        index = self.__dict__.get("_serial_index_cache")
        if index is None:
            index = {entry.serial_number: entry for entry in self.entries}
            object.__setattr__(self, "_serial_index_cache", index)
        return index

    def serial_numbers(self) -> frozenset[int]:
        cached = self.__dict__.get("_serials_cache")
        if cached is None:
            cached = frozenset(self._serial_index())
            object.__setattr__(self, "_serials_cache", cached)
        return cached

    def is_revoked(self, serial_number: int) -> bool:
        return serial_number in self._serial_index()

    def entry_for(self, serial_number: int) -> RevokedEntry | None:
        return self._serial_index().get(serial_number)

    def is_expired(self, at: datetime.datetime) -> bool:
        """True once ``nextUpdate`` has passed; clients must refetch."""
        return at > self.next_update

    # -- encoding ----------------------------------------------------------

    def _tbs_der(self) -> bytes:
        algorithm = der.encode_sequence(
            der.encode_oid(self.signature_algorithm_oid), der.encode_null()
        )
        parts = [
            der.encode_integer(1),  # version v2
            algorithm,
            self.issuer.to_der(),
            _encode_time(self.this_update),
            _encode_time(self.next_update),
        ]
        if self.entries:
            parts.append(
                der.encode_sequence_many(entry.to_der() for entry in self.entries)
            )
        crl_number_ext = der.encode_sequence(
            der.encode_oid(OID.CRL_NUMBER),
            der.encode_octet_string(der.encode_integer(self.crl_number)),
        )
        parts.append(
            der.encode_context(_CTX_CRL_EXTENSIONS, der.encode_sequence(crl_number_ext))
        )
        return der.encode_sequence(*parts)

    def to_der(self) -> bytes:
        algorithm = der.encode_sequence(
            der.encode_oid(self.signature_algorithm_oid), der.encode_null()
        )
        return der.encode_sequence(
            self._tbs_der(), algorithm, der.encode_bit_string(self.signature)
        )

    @property
    def encoded_size(self) -> int:
        """Byte size of the DER encoding (what clients download).

        Computed with exact DER length arithmetic (no encoding); set the
        ``REPRO_DER_CHECK`` environment variable to cross-check every
        result against ``len(to_der())``.
        """
        cached = self.__dict__.get("_encoded_size_cache")
        if cached is None:
            # Deferred import: sizing imports RevokedEntry from this module.
            from repro.revocation.sizing import CrlSizeModel, revoked_entry_size

            model = CrlSizeModel(
                issuer=self.issuer,
                signature_size=len(self.signature),
                signature_algorithm_oid=self.signature_algorithm_oid,
                crl_number=self.crl_number,
                this_update=self.this_update,
                next_update=self.next_update,
            )
            entry_bytes = sum(
                revoked_entry_size(
                    entry.serial_number,
                    with_reason=entry.reason is not None,
                    generalized_time=entry.revocation_date.year > 2049,
                )
                for entry in self.entries
            )
            cached = model.size(entry_bytes)
            if _DER_CHECK:
                actual = len(self.to_der())
                if cached != actual:
                    raise AssertionError(
                        f"DER fast path size {cached} != encoded {actual} "
                        f"for CRL {self.url or self.crl_number}"
                    )
            object.__setattr__(self, "_encoded_size_cache", cached)
        return cached

    def verify_signature(
        self, issuer_public_key: bytes, backend: SignatureBackend | None = None
    ) -> bool:
        backend = backend or default_backend()
        return backend.verify(issuer_public_key, self._tbs_der(), self.signature)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        issuer: Name,
        issuer_keys: KeyPair,
        entries: list[RevokedEntry] | tuple[RevokedEntry, ...],
        this_update: datetime.datetime,
        next_update: datetime.datetime,
        crl_number: int = 1,
        url: str = "",
    ) -> "CertificateRevocationList":
        if next_update <= this_update:
            raise ValueError("nextUpdate must follow thisUpdate")
        ordered = tuple(sorted(entries, key=lambda e: e.serial_number))
        unsigned = cls(
            issuer=issuer,
            this_update=this_update,
            next_update=next_update,
            entries=ordered,
            crl_number=crl_number,
            signature_algorithm_oid=issuer_keys.backend.algorithm_oid,
            signature=b"",
            url=url,
        )
        signature = issuer_keys.sign(unsigned._tbs_der())
        return cls(
            issuer=issuer,
            this_update=this_update,
            next_update=next_update,
            entries=ordered,
            crl_number=crl_number,
            signature_algorithm_oid=issuer_keys.backend.algorithm_oid,
            signature=signature,
            url=url,
        )

    @classmethod
    def from_der(cls, data: bytes, url: str = "") -> "CertificateRevocationList":
        try:
            return cls._from_der(data, url)
        except der.Asn1Error:
            raise
        except (IndexError, ValueError, KeyError, TypeError) as exc:
            raise der.Asn1Error(f"malformed CRL: {exc}") from exc

    @classmethod
    def _from_der(cls, data: bytes, url: str = "") -> "CertificateRevocationList":
        node = der.decode_all(data)
        tbs, _algorithm, signature_node = node.children
        children = tbs.children
        index = 0
        if children[index].tag == der.Tag.INTEGER:
            index += 1  # version
        algorithm_oid = children[index].children[0].as_oid()
        index += 1
        issuer = Name.from_der_node(children[index])
        index += 1
        this_update = children[index].as_datetime()
        index += 1
        next_update = children[index].as_datetime()
        index += 1
        entries: list[RevokedEntry] = []
        if index < len(children) and children[index].tag == der.Tag.SEQUENCE:
            entries = [
                RevokedEntry.from_der_node(child)
                for child in children[index].children
            ]
            index += 1
        crl_number = 0
        if index < len(children) and children[index].context_number == 0:
            for ext in children[index].children[0].children:
                if ext.children[0].as_oid() == OID.CRL_NUMBER:
                    crl_number = der.decode_all(ext.children[1].value).as_integer()
        return cls(
            issuer=issuer,
            this_update=this_update,
            next_update=next_update,
            entries=tuple(entries),
            crl_number=crl_number,
            signature_algorithm_oid=algorithm_oid,
            signature=signature_node.as_bit_string(),
            url=url,
        )
