"""Online Certificate Status Protocol (RFC 6960), simplified.

Requests identify a certificate by (issuer key hash, serial); responses
carry a signed status with a validity window.  The ``unknown`` status is
modelled explicitly because the paper's browser tests distinguish clients
that correctly reject ``unknown`` from those that incorrectly trust it.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

from repro.asn1 import der
from repro.pki.keys import KeyPair, SignatureBackend, default_backend
from repro.revocation.reason import ReasonCode

__all__ = ["CertStatus", "OcspRequest", "OcspResponse", "OcspResponseStatus"]


class CertStatus(enum.Enum):
    """Per-certificate status in an OCSP response."""

    GOOD = "good"
    REVOKED = "revoked"
    UNKNOWN = "unknown"


class OcspResponseStatus(enum.Enum):
    """Top-level OCSPResponseStatus."""

    SUCCESSFUL = 0
    MALFORMED_REQUEST = 1
    INTERNAL_ERROR = 2
    TRY_LATER = 3
    UNAUTHORIZED = 6


@dataclass(frozen=True)
class OcspRequest:
    """A request for the status of one certificate.

    ``use_get`` mirrors the paper's note (§6.2 footnote 18) that browsers
    commonly issue GET requests while stock OpenSSL responders only accept
    POST; our responder honours both but records the method.
    """

    issuer_key_hash: bytes
    serial_number: int
    use_get: bool = True

    def to_der(self) -> bytes:
        cert_id = der.encode_sequence(
            der.encode_octet_string(self.issuer_key_hash),
            der.encode_integer(self.serial_number),
        )
        return der.encode_sequence(der.encode_sequence(cert_id))

    @classmethod
    def from_der(cls, data: bytes, use_get: bool = True) -> "OcspRequest":
        node = der.decode_all(data)
        cert_id = node.children[0].children[0]
        return cls(
            issuer_key_hash=cert_id.children[0].value,
            serial_number=cert_id.children[1].as_integer(),
            use_get=use_get,
        )


@dataclass(frozen=True)
class OcspResponse:
    """A signed single-certificate OCSP response."""

    response_status: OcspResponseStatus
    cert_status: CertStatus
    issuer_key_hash: bytes
    serial_number: int
    this_update: datetime.datetime
    next_update: datetime.datetime
    revocation_time: datetime.datetime | None = None
    revocation_reason: ReasonCode | None = None
    signature: bytes = b""
    signature_algorithm_oid: str = ""

    @property
    def is_successful(self) -> bool:
        return self.response_status is OcspResponseStatus.SUCCESSFUL

    def is_expired(self, at: datetime.datetime) -> bool:
        return at > self.next_update

    def _tbs_der(self) -> bytes:
        status_tag = {
            CertStatus.GOOD: 0,
            CertStatus.REVOKED: 1,
            CertStatus.UNKNOWN: 2,
        }[self.cert_status]
        parts = [
            der.encode_integer(self.response_status.value),
            der.encode_octet_string(self.issuer_key_hash),
            der.encode_integer(self.serial_number),
            der.encode_context(status_tag, b"", constructed=False),
            der.encode_generalized_time(self.this_update),
            der.encode_generalized_time(self.next_update),
        ]
        if self.revocation_time is not None:
            parts.append(der.encode_generalized_time(self.revocation_time))
        if self.revocation_reason is not None:
            parts.append(
                der.encode_tlv(der.Tag.ENUMERATED, bytes([int(self.revocation_reason)]))
            )
        return der.encode_sequence(*parts)

    def to_der(self) -> bytes:
        return der.encode_sequence(
            self._tbs_der(), der.encode_bit_string(self.signature)
        )

    @property
    def encoded_size(self) -> int:
        return len(self.to_der())

    def verify_signature(
        self, responder_public_key: bytes, backend: SignatureBackend | None = None
    ) -> bool:
        backend = backend or default_backend()
        return backend.verify(responder_public_key, self._tbs_der(), self.signature)

    @classmethod
    def build(
        cls,
        responder_keys: KeyPair,
        cert_status: CertStatus,
        issuer_key_hash: bytes,
        serial_number: int,
        this_update: datetime.datetime,
        next_update: datetime.datetime,
        revocation_time: datetime.datetime | None = None,
        revocation_reason: ReasonCode | None = None,
        response_status: OcspResponseStatus = OcspResponseStatus.SUCCESSFUL,
    ) -> "OcspResponse":
        if next_update <= this_update:
            raise ValueError("nextUpdate must follow thisUpdate")
        unsigned = cls(
            response_status=response_status,
            cert_status=cert_status,
            issuer_key_hash=issuer_key_hash,
            serial_number=serial_number,
            this_update=this_update,
            next_update=next_update,
            revocation_time=revocation_time,
            revocation_reason=revocation_reason,
            signature_algorithm_oid=responder_keys.backend.algorithm_oid,
        )
        return cls(
            response_status=response_status,
            cert_status=cert_status,
            issuer_key_hash=issuer_key_hash,
            serial_number=serial_number,
            this_update=this_update,
            next_update=next_update,
            revocation_time=revocation_time,
            revocation_reason=revocation_reason,
            signature=responder_keys.sign(unsigned._tbs_der()),
            signature_algorithm_oid=responder_keys.backend.algorithm_oid,
        )

    @classmethod
    def from_der(cls, data: bytes) -> "OcspResponse":
        try:
            return cls._from_der(data)
        except der.Asn1Error:
            raise
        except (IndexError, ValueError, KeyError, TypeError) as exc:
            raise der.Asn1Error(f"malformed OCSP response: {exc}") from exc

    @classmethod
    def _from_der(cls, data: bytes) -> "OcspResponse":
        node = der.decode_all(data)
        tbs, signature_node = node.children
        children = tbs.children
        response_status = OcspResponseStatus(children[0].as_integer())
        issuer_key_hash = children[1].value
        serial = children[2].as_integer()
        status_tag = children[3].context_number
        cert_status = {0: CertStatus.GOOD, 1: CertStatus.REVOKED, 2: CertStatus.UNKNOWN}[
            status_tag
        ]
        this_update = children[4].as_datetime()
        next_update = children[5].as_datetime()
        revocation_time = None
        revocation_reason = None
        index = 6
        if index < len(children) and children[index].tag == der.Tag.GENERALIZED_TIME:
            revocation_time = children[index].as_datetime()
            index += 1
        if index < len(children) and children[index].tag == der.Tag.ENUMERATED:
            revocation_reason = ReasonCode(children[index].as_integer())
        return cls(
            response_status=response_status,
            cert_status=cert_status,
            issuer_key_hash=issuer_key_hash,
            serial_number=serial,
            this_update=this_update,
            next_update=next_update,
            revocation_time=revocation_time,
            revocation_reason=revocation_reason,
            signature=signature_node.as_bit_string(),
        )

    @classmethod
    def error(cls, status: OcspResponseStatus) -> "OcspResponse":
        epoch = datetime.datetime(1970, 1, 1, tzinfo=datetime.timezone.utc)
        return cls(
            response_status=status,
            cert_status=CertStatus.UNKNOWN,
            issuer_key_hash=b"",
            serial_number=0,
            this_update=epoch,
            next_update=epoch + datetime.timedelta(seconds=1),
        )
