"""Revocation artefacts and client-side checking.

Wire-level objects (CRLs, OCSP requests/responses, staples) plus the
client-side :class:`RevocationChecker` used by the browser models.
"""

from repro.revocation.crl import CertificateRevocationList, RevokedEntry
from repro.revocation.ocsp import (
    CertStatus,
    OcspRequest,
    OcspResponse,
    OcspResponseStatus,
)
from repro.revocation.reason import ReasonCode
from repro.revocation.stapling import StapleCache, StaplePolicy
from repro.revocation.checker import (
    CheckOutcome,
    CheckResult,
    RevocationChecker,
    RevocationFetcher,
)

__all__ = [
    "CertStatus",
    "CertificateRevocationList",
    "CheckOutcome",
    "CheckResult",
    "OcspRequest",
    "OcspResponse",
    "OcspResponseStatus",
    "ReasonCode",
    "RevocationChecker",
    "RevocationFetcher",
    "RevokedEntry",
    "StapleCache",
    "StaplePolicy",
]
