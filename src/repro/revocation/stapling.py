"""OCSP Stapling (TLS ``status_request``) server-side behaviour.

Models the deployment quirks the paper measures in §4.3:

* A server only staples if stapling is *enabled* by its administrator
  (rare: ~3% of certificates).
* Nginx-like servers with a **cold staple cache** omit the staple on the
  first request and fetch one in the background -- which is why a
  single-connection scan underestimates stapling support by ~18% and
  repeated connections (Figure 3) reveal more support.
* Stock Nginx refuses to staple ``revoked``/``unknown`` responses; the
  paper modified it to staple anything, and :class:`StaplePolicy` exposes
  both behaviours.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass, field

from repro.revocation.ocsp import CertStatus, OcspResponse

__all__ = ["StapleCache", "StaplePolicy"]


class StaplePolicy(enum.Enum):
    """What the server is willing to put in a staple."""

    #: stock nginx: only staple `good` responses.
    GOOD_ONLY = "good_only"
    #: the paper's modified nginx: staple whatever the responder said.
    ANY_STATUS = "any_status"


@dataclass
class StapleCache:
    """Per-server staple cache with nginx-like cold-start behaviour.

    ``get_staple`` returns the cached staple if fresh, else ``None`` --
    and, when ``None``, marks a background fetch that completes after
    ``fetch_delay`` (the next request at or after that instant sees the
    staple).
    """

    policy: StaplePolicy = StaplePolicy.GOOD_ONLY
    fetch_delay: datetime.timedelta = field(
        default_factory=lambda: datetime.timedelta(seconds=1)
    )
    _cached: OcspResponse | None = None
    _fetch_completes_at: datetime.datetime | None = None
    _pending: OcspResponse | None = None

    def _admits(self, response: OcspResponse) -> bool:
        if not response.is_successful:
            return False
        if self.policy is StaplePolicy.ANY_STATUS:
            return True
        return response.cert_status is CertStatus.GOOD

    def get_staple(
        self,
        at: datetime.datetime,
        fetch_fresh: "callable",
    ) -> OcspResponse | None:
        """Return the staple to send at time ``at``.

        ``fetch_fresh`` is a zero-argument callable returning a fresh
        :class:`OcspResponse` (or ``None`` if the responder is down); it is
        invoked when the cache is cold or stale.
        """
        # Complete any pending background fetch first.
        if (
            self._fetch_completes_at is not None
            and at >= self._fetch_completes_at
            and self._pending is not None
        ):
            if self._admits(self._pending):
                self._cached = self._pending
            self._pending = None
            self._fetch_completes_at = None

        if self._cached is not None and not self._cached.is_expired(at):
            return self._cached

        # Cold or stale cache: this request goes out without a staple and a
        # background fetch is kicked off (nginx behaviour).
        self._cached = None
        if self._fetch_completes_at is None:
            fresh = fetch_fresh()
            if fresh is not None:
                self._pending = fresh
                self._fetch_completes_at = at + self.fetch_delay
        return None

    def warm(self, response: OcspResponse) -> None:
        """Pre-populate the cache (a long-running server in steady state)."""
        if self._admits(response):
            self._cached = response
