"""RFC 5280 CRL reason codes.

§4.2 of the paper: most revocations carry no reason code at all, and
Google's CRLSet only admits revocations whose reason is one of a small set
(no reason, Unspecified, KeyCompromise, CACompromise, AACompromise).
"""

from __future__ import annotations

import enum

__all__ = ["ReasonCode", "CRLSET_REASON_CODES"]


class ReasonCode(enum.IntEnum):
    """CRLReason ::= ENUMERATED (RFC 5280 5.3.1)."""

    UNSPECIFIED = 0
    KEY_COMPROMISE = 1
    CA_COMPROMISE = 2
    AFFILIATION_CHANGED = 3
    SUPERSEDED = 4
    CESSATION_OF_OPERATION = 5
    CERTIFICATE_HOLD = 6
    # value 7 is not used
    REMOVE_FROM_CRL = 8
    PRIVILEGE_WITHDRAWN = 9
    AA_COMPROMISE = 10

    @property
    def label(self) -> str:
        return self.name.replace("_", " ").title().replace(" ", "")


#: Reason codes admitted into CRLSets (paper §7.1 footnote 25).  ``None``
#: (no reason extension at all) is also admitted.
CRLSET_REASON_CODES = frozenset(
    {
        ReasonCode.UNSPECIFIED,
        ReasonCode.KEY_COMPROMISE,
        ReasonCode.CA_COMPROMISE,
        ReasonCode.AA_COMPROMISE,
    }
)


def is_crlset_eligible(reason: ReasonCode | None) -> bool:
    """True if a revocation with this reason may enter a CRLSet."""
    return reason is None or reason in CRLSET_REASON_CODES
