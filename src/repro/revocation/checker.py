"""Client-side revocation checking.

:class:`RevocationChecker` implements the mechanics every browser model
shares -- fetch a CRL or query an OCSP responder for one certificate,
classify the outcome -- while the *policy* (which certificates to check,
what to do on failure) lives in :mod:`repro.browsers.policy`.

The checker talks to the network through the :class:`RevocationFetcher`
protocol, implemented by the simulated network (:mod:`repro.net`), so the
same checker code runs in unit tests with a stub fetcher.  Fetchers that
also implement the richer ``fetch_crl_result`` / ``fetch_ocsp_result``
methods (:class:`repro.net.fetcher.NetworkFetcher`) get their failures
classified into :class:`FailureClass` instead of collapsed into ``None``,
so callers can distinguish a soft-failable outage from a hard parse
error and account retries/latency per check.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass, replace
from typing import Protocol

from repro.pki.certificate import Certificate
from repro.revocation.crl import CertificateRevocationList
from repro.revocation.ocsp import CertStatus, OcspResponse

__all__ = [
    "CheckOutcome",
    "CheckResult",
    "FAILURE_CATEGORY",
    "FailureClass",
    "RevocationChecker",
    "RevocationFetcher",
]


class RevocationFetcher(Protocol):
    """What the checker needs from the network layer."""

    def fetch_crl(self, url: str) -> CertificateRevocationList | None:
        """Download and parse a CRL; ``None`` on any failure."""

    def fetch_ocsp(
        self, url: str, issuer_key_hash: bytes, serial_number: int, use_get: bool = True
    ) -> OcspResponse | None:
        """Query an OCSP responder; ``None`` on transport failure."""


class CheckOutcome(enum.Enum):
    """Result of one revocation check for one certificate."""

    GOOD = "good"
    REVOKED = "revoked"
    #: responder answered `unknown` (OCSP only).
    UNKNOWN = "unknown"
    #: revocation information could not be obtained at all.
    UNAVAILABLE = "unavailable"
    #: certificate carries no revocation pointers (never revocable).
    NO_INFO = "no_info"


class FailureClass(enum.Enum):
    """Why a check came back non-definitive (§6.1's unavailability modes
    plus the fault-injection layer's, docs/ROBUSTNESS.md)."""

    NONE = "none"
    #: timeout / no response from the endpoint.
    TIMEOUT = "timeout"
    #: the revocation server's domain name does not resolve.
    DNS = "dns"
    #: HTTP-level error (404 and friends).
    HTTP = "http"
    #: body received but undecodable (truncated/corrupted DER).
    MALFORMED = "malformed"
    #: payload decoded but its nextUpdate window has closed.
    STALE = "stale"
    #: the client's circuit breaker refused to try.
    BREAKER_OPEN = "breaker_open"
    #: a previous failure was negatively cached.
    NEGATIVE_CACHED = "negative_cached"
    #: the certificate carries no pointer for this protocol.
    NO_POINTER = "no_pointer"
    #: transport-less fetcher returned None without classification.
    UNCLASSIFIED = "unclassified"


#: Which layer each failure class blames: "transport" never reached the
#: endpoint, "endpoint" answered but unhelpfully, "content" delivered an
#: unusable payload, "client" refused locally (breaker/negative cache),
#: "pointer" had nowhere to go.  The static-analysis gate (RPR005,
#: docs/STATIC_ANALYSIS.md) verifies this dispatch stays exhaustive, so
#: adding a FailureClass member breaks the build until it is placed here.
# repro: exhaustive(FailureClass)
FAILURE_CATEGORY: dict[FailureClass, str] = {
    FailureClass.NONE: "ok",
    FailureClass.TIMEOUT: "transport",
    FailureClass.DNS: "transport",
    FailureClass.HTTP: "endpoint",
    FailureClass.MALFORMED: "content",
    FailureClass.STALE: "content",
    FailureClass.BREAKER_OPEN: "client",
    FailureClass.NEGATIVE_CACHED: "client",
    FailureClass.NO_POINTER: "pointer",
    FailureClass.UNCLASSIFIED: "unknown",
}


@dataclass(frozen=True)
class CheckResult:
    outcome: CheckOutcome
    protocol: str = ""  # "crl", "ocsp", or "staple"
    bytes_downloaded: int = 0
    latency: datetime.timedelta = datetime.timedelta(0)
    #: set when the outcome is UNKNOWN/UNAVAILABLE/NO_INFO.
    failure: FailureClass = FailureClass.NONE
    #: request attempts made across every URL tried (retries included).
    attempts: int = 0

    @property
    def is_definitive(self) -> bool:
        return self.outcome in (CheckOutcome.GOOD, CheckOutcome.REVOKED)

    @property
    def is_soft_failure(self) -> bool:
        """A failure a soft-fail browser silently accepts (§6.1): the
        information was unavailable, so no definitive answer exists."""
        return self.outcome in (CheckOutcome.UNAVAILABLE, CheckOutcome.UNKNOWN)

    @property
    def is_hard_failure(self) -> bool:
        """Unavailable in a way no fallback can fix for this protocol."""
        return self.outcome is CheckOutcome.UNAVAILABLE

    @property
    def failure_category(self) -> str:
        """The blamed layer for this result's failure class."""
        return FAILURE_CATEGORY[self.failure]


_FETCH_FAILURE_CLASSES = {
    "timeout": FailureClass.TIMEOUT,
    "dns_failure": FailureClass.DNS,
    "http_error": FailureClass.HTTP,
    "parse_error": FailureClass.MALFORMED,
    "breaker_open": FailureClass.BREAKER_OPEN,
    "negative_cached": FailureClass.NEGATIVE_CACHED,
}


class RevocationChecker:
    """Fetch-and-classify revocation status for a single certificate."""

    def __init__(self, fetcher: RevocationFetcher) -> None:
        self._fetcher = fetcher

    # -- fetch adapters ----------------------------------------------------

    def _fetch_crl(self, url: str):
        """Returns (crl | None, FailureClass, attempts, latency, bytes)."""
        rich = getattr(self._fetcher, "fetch_crl_result", None)
        if rich is None:
            crl = self._fetcher.fetch_crl(url)
            failure = FailureClass.NONE if crl is not None else FailureClass.UNCLASSIFIED
            return crl, failure, 0, datetime.timedelta(0), 0
        result = rich(url)
        return self._unpack(result)

    def _fetch_ocsp(self, url, issuer_key_hash, serial_number, use_get):
        rich = getattr(self._fetcher, "fetch_ocsp_result", None)
        if rich is None:
            response = self._fetcher.fetch_ocsp(
                url, issuer_key_hash, serial_number, use_get=use_get
            )
            failure = (
                FailureClass.NONE if response is not None else FailureClass.UNCLASSIFIED
            )
            return response, failure, 0, datetime.timedelta(0), 0
        result = rich(url, issuer_key_hash, serial_number, use_get=use_get)
        return self._unpack(result)

    @staticmethod
    def _unpack(result):
        failure = (
            FailureClass.NONE
            if result.ok
            else _FETCH_FAILURE_CLASSES.get(
                result.outcome.value, FailureClass.UNCLASSIFIED
            )
        )
        return (
            result.value,
            failure,
            result.attempts,
            result.latency,
            result.bytes_downloaded,
        )

    # -- checks ------------------------------------------------------------

    def check_crl(
        self, certificate: Certificate, at: datetime.datetime
    ) -> CheckResult:
        """Check via the certificate's CRL distribution points."""
        urls = certificate.crl_urls
        if not urls:
            return CheckResult(
                CheckOutcome.NO_INFO, protocol="crl", failure=FailureClass.NO_POINTER
            )
        attempts = 0
        latency = datetime.timedelta(0)
        nbytes = 0
        last_failure = FailureClass.UNCLASSIFIED
        for url in urls:
            crl, failure, tries, cost, down = self._fetch_crl(url)
            attempts += tries
            latency += cost
            nbytes += down
            if crl is None:
                last_failure = failure
                continue
            if crl.is_expired(at):
                last_failure = FailureClass.STALE
                continue
            size = crl.encoded_size
            outcome = (
                CheckOutcome.REVOKED
                if crl.is_revoked(certificate.serial_number)
                else CheckOutcome.GOOD
            )
            return CheckResult(
                outcome,
                protocol="crl",
                bytes_downloaded=max(nbytes, size),
                latency=latency,
                attempts=attempts,
            )
        return CheckResult(
            CheckOutcome.UNAVAILABLE,
            protocol="crl",
            bytes_downloaded=nbytes,
            latency=latency,
            failure=last_failure,
            attempts=attempts,
        )

    def check_ocsp(
        self,
        certificate: Certificate,
        issuer_key_hash: bytes,
        at: datetime.datetime,
        use_get: bool = True,
    ) -> CheckResult:
        """Check via the certificate's OCSP responders."""
        urls = certificate.ocsp_urls
        if not urls:
            return CheckResult(
                CheckOutcome.NO_INFO, protocol="ocsp", failure=FailureClass.NO_POINTER
            )
        attempts = 0
        latency = datetime.timedelta(0)
        nbytes = 0
        last_failure = FailureClass.UNCLASSIFIED
        for url in urls:
            response, failure, tries, cost, down = self._fetch_ocsp(
                url, issuer_key_hash, certificate.serial_number, use_get
            )
            attempts += tries
            latency += cost
            nbytes += down
            if response is None:
                last_failure = failure
                continue
            if not response.is_successful:
                last_failure = FailureClass.HTTP
                continue
            if response.is_expired(at):
                last_failure = FailureClass.STALE
                continue
            return CheckResult(
                self._classify(response),
                protocol="ocsp",
                bytes_downloaded=max(nbytes, response.encoded_size),
                latency=latency,
                attempts=attempts,
            )
        return CheckResult(
            CheckOutcome.UNAVAILABLE,
            protocol="ocsp",
            bytes_downloaded=nbytes,
            latency=latency,
            failure=last_failure,
            attempts=attempts,
        )

    def check_staple(
        self, staple: OcspResponse | None, at: datetime.datetime
    ) -> CheckResult:
        """Classify a stapled OCSP response delivered in the handshake."""
        if staple is None:
            return CheckResult(
                CheckOutcome.UNAVAILABLE,
                protocol="staple",
                failure=FailureClass.NO_POINTER,
            )
        if not staple.is_successful:
            return CheckResult(
                CheckOutcome.UNAVAILABLE,
                protocol="staple",
                failure=FailureClass.MALFORMED,
            )
        if staple.is_expired(at):
            return CheckResult(
                CheckOutcome.UNAVAILABLE,
                protocol="staple",
                failure=FailureClass.STALE,
            )
        result = CheckResult(self._classify(staple), protocol="staple")
        if result.outcome is CheckOutcome.UNKNOWN:
            result = replace(result, failure=FailureClass.UNCLASSIFIED)
        return result

    @staticmethod
    def _classify(response: OcspResponse) -> CheckOutcome:
        if response.cert_status is CertStatus.REVOKED:
            return CheckOutcome.REVOKED
        if response.cert_status is CertStatus.GOOD:
            return CheckOutcome.GOOD
        return CheckOutcome.UNKNOWN
