"""Client-side revocation checking.

:class:`RevocationChecker` implements the mechanics every browser model
shares -- fetch a CRL or query an OCSP responder for one certificate,
classify the outcome -- while the *policy* (which certificates to check,
what to do on failure) lives in :mod:`repro.browsers.policy`.

The checker talks to the network through the :class:`RevocationFetcher`
protocol, implemented by the simulated network (:mod:`repro.net`), so the
same checker code runs in unit tests with a stub fetcher.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass
from typing import Protocol

from repro.pki.certificate import Certificate
from repro.revocation.crl import CertificateRevocationList
from repro.revocation.ocsp import CertStatus, OcspResponse

__all__ = [
    "CheckOutcome",
    "CheckResult",
    "RevocationChecker",
    "RevocationFetcher",
]


class RevocationFetcher(Protocol):
    """What the checker needs from the network layer."""

    def fetch_crl(self, url: str) -> CertificateRevocationList | None:
        """Download and parse a CRL; ``None`` on any failure."""

    def fetch_ocsp(
        self, url: str, issuer_key_hash: bytes, serial_number: int, use_get: bool = True
    ) -> OcspResponse | None:
        """Query an OCSP responder; ``None`` on transport failure."""


class CheckOutcome(enum.Enum):
    """Result of one revocation check for one certificate."""

    GOOD = "good"
    REVOKED = "revoked"
    #: responder answered `unknown` (OCSP only).
    UNKNOWN = "unknown"
    #: revocation information could not be obtained at all.
    UNAVAILABLE = "unavailable"
    #: certificate carries no revocation pointers (never revocable).
    NO_INFO = "no_info"


@dataclass(frozen=True)
class CheckResult:
    outcome: CheckOutcome
    protocol: str = ""  # "crl", "ocsp", or "staple"
    bytes_downloaded: int = 0
    latency: datetime.timedelta = datetime.timedelta(0)

    @property
    def is_definitive(self) -> bool:
        return self.outcome in (CheckOutcome.GOOD, CheckOutcome.REVOKED)


class RevocationChecker:
    """Fetch-and-classify revocation status for a single certificate."""

    def __init__(self, fetcher: RevocationFetcher) -> None:
        self._fetcher = fetcher

    def check_crl(
        self, certificate: Certificate, at: datetime.datetime
    ) -> CheckResult:
        """Check via the certificate's CRL distribution points."""
        urls = certificate.crl_urls
        if not urls:
            return CheckResult(CheckOutcome.NO_INFO, protocol="crl")
        for url in urls:
            crl = self._fetcher.fetch_crl(url)
            if crl is None:
                continue
            if crl.is_expired(at):
                continue
            size = crl.encoded_size
            if crl.is_revoked(certificate.serial_number):
                return CheckResult(
                    CheckOutcome.REVOKED, protocol="crl", bytes_downloaded=size
                )
            return CheckResult(
                CheckOutcome.GOOD, protocol="crl", bytes_downloaded=size
            )
        return CheckResult(CheckOutcome.UNAVAILABLE, protocol="crl")

    def check_ocsp(
        self,
        certificate: Certificate,
        issuer_key_hash: bytes,
        at: datetime.datetime,
        use_get: bool = True,
    ) -> CheckResult:
        """Check via the certificate's OCSP responders."""
        urls = certificate.ocsp_urls
        if not urls:
            return CheckResult(CheckOutcome.NO_INFO, protocol="ocsp")
        for url in urls:
            response = self._fetcher.fetch_ocsp(
                url, issuer_key_hash, certificate.serial_number, use_get=use_get
            )
            if response is None or not response.is_successful:
                continue
            if response.is_expired(at):
                continue
            return CheckResult(
                self._classify(response),
                protocol="ocsp",
                bytes_downloaded=response.encoded_size,
            )
        return CheckResult(CheckOutcome.UNAVAILABLE, protocol="ocsp")

    def check_staple(
        self, staple: OcspResponse | None, at: datetime.datetime
    ) -> CheckResult:
        """Classify a stapled OCSP response delivered in the handshake."""
        if staple is None:
            return CheckResult(CheckOutcome.UNAVAILABLE, protocol="staple")
        if not staple.is_successful or staple.is_expired(at):
            return CheckResult(CheckOutcome.UNAVAILABLE, protocol="staple")
        return CheckResult(self._classify(staple), protocol="staple")

    @staticmethod
    def _classify(response: OcspResponse) -> CheckOutcome:
        if response.cert_status is CertStatus.REVOKED:
            return CheckOutcome.REVOKED
        if response.cert_status is CertStatus.GOOD:
            return CheckOutcome.GOOD
        return CheckOutcome.UNKNOWN
