#!/usr/bin/env python
"""Regenerate the golden report digests after an intentional change.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/update_golden.py

Reruns every experiment at the pinned calibration (scale 0.002, seed
20151028, no faults) and rewrites ``tests/experiments/golden/``: the
per-experiment report digests, the per-mechanism sweep-block digests
(``mechanisms-*.json``, one digest per registered revocation mechanism),
and the per-mechanism serving-block digests (``serving-*.json``, one
digest per mechanism's serving report; docs/SERVING.md).
Commit the diff together with the change that caused it -- the point of
the golden files is that report-byte changes are always a reviewed diff
(tests/experiments/test_golden.py).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import api  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "experiments" / "golden"
GOLDEN_PATH = GOLDEN_DIR / "reports-scale0.002-seed20151028.json"
MECHANISMS_PATH = GOLDEN_DIR / "mechanisms-scale0.002-seed20151028.json"
SERVING_PATH = GOLDEN_DIR / "serving-scale0.002-seed20151028.json"


def _write(path: Path, digests: dict[str, str]) -> list[str]:
    """Write one golden file; return the keys whose digests changed."""
    old = None
    if path.exists():
        old = json.loads(path.read_text(encoding="utf-8"))["digests"]
    payload = {
        "scale": 0.002,
        "seed": 20151028,
        "fault_profile": "none",
        "digests": digests,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    changed = (
        sorted(digests)
        if old is None
        else sorted(
            set(digests) ^ set(old)
            | {key for key in digests if old.get(key) != digests[key]}
        )
    )
    print(f"wrote {path.relative_to(REPO_ROOT)}")
    print(
        f"{len(changed)} digest(s) changed: {', '.join(changed) or '(none)'}"
    )
    return changed


def main() -> int:
    _write(
        GOLDEN_PATH,
        api.study.golden_digests(
            scale=0.002, seed=20151028, fault_profile="none"
        ),
    )
    _write(
        MECHANISMS_PATH,
        api.study.mechanism_digests(
            scale=0.002, seed=20151028, fault_profile="none"
        ),
    )
    _write(
        SERVING_PATH,
        api.serve.serving_digests(
            scale=0.002, seed=20151028, fault_profile="none"
        ),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
