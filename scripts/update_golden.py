#!/usr/bin/env python
"""Regenerate the golden report digests after an intentional change.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/update_golden.py

Reruns every experiment at the pinned calibration (scale 0.002, seed
20151028, no faults) and rewrites ``tests/experiments/golden/``.  Commit
the diff together with the change that caused it -- the point of the
golden file is that report-byte changes are always a reviewed diff
(tests/experiments/test_golden.py).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import api  # noqa: E402

GOLDEN_PATH = (
    REPO_ROOT / "tests" / "experiments" / "golden"
    / "reports-scale0.002-seed20151028.json"
)


def main() -> int:
    old = None
    if GOLDEN_PATH.exists():
        old = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))["digests"]
    digests = api.golden_digests(scale=0.002, seed=20151028, fault_profile="none")
    payload = {
        "scale": 0.002,
        "seed": 20151028,
        "fault_profile": "none",
        "digests": digests,
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    changed = (
        sorted(digests)
        if old is None
        else [eid for eid in digests if old.get(eid) != digests[eid]]
    )
    print(f"wrote {GOLDEN_PATH.relative_to(REPO_ROOT)}")
    print(
        f"{len(changed)} digest(s) changed: {', '.join(changed) or '(none)'}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
