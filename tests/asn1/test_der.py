"""DER encoder/decoder unit and property tests."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asn1 import der

UTC = datetime.timezone.utc


class TestLengthEncoding:
    def test_short_form(self):
        assert der.encode_length(0) == b"\x00"
        assert der.encode_length(127) == b"\x7f"

    def test_long_form_one_byte(self):
        assert der.encode_length(128) == b"\x81\x80"
        assert der.encode_length(255) == b"\x81\xff"

    def test_long_form_two_bytes(self):
        assert der.encode_length(256) == b"\x82\x01\x00"

    def test_negative_rejected(self):
        with pytest.raises(der.Asn1Error):
            der.encode_length(-1)


class TestInteger:
    def test_zero(self):
        assert der.encode_integer(0) == b"\x02\x01\x00"

    def test_small_positive(self):
        assert der.encode_integer(127) == b"\x02\x01\x7f"

    def test_sign_bit_padding(self):
        # 128 needs a leading 0x00 so it is not read as negative.
        assert der.encode_integer(128) == b"\x02\x02\x00\x80"

    def test_negative(self):
        assert der.encode_integer(-1) == b"\x02\x01\xff"

    def test_large_serial_roundtrip(self):
        serial = 2**160 - 12345
        node = der.decode_all(der.encode_integer(serial))
        assert node.as_integer() == serial

    @given(st.integers(min_value=-(2**256), max_value=2**256))
    def test_roundtrip_property(self, value):
        node = der.decode_all(der.encode_integer(value))
        assert node.as_integer() == value

    @given(st.integers(min_value=0, max_value=2**256))
    def test_minimal_encoding_no_redundant_bytes(self, value):
        body = der.decode_all(der.encode_integer(value)).value
        if len(body) > 1:
            # No redundant leading 0x00 (unless needed for the sign bit).
            assert not (body[0] == 0x00 and body[1] < 0x80)


class TestOid:
    def test_known_oid(self):
        # 2.5.29.31 (cRLDistributionPoints) has a well-known encoding.
        assert der.encode_oid("2.5.29.31") == b"\x06\x03\x55\x1d\x1f"

    def test_multibyte_arc(self):
        # 1.3.6.1.5.5.7.48.1: arc 48 < 128 single byte; check roundtrip.
        node = der.decode_all(der.encode_oid("1.3.6.1.5.5.7.48.1"))
        assert node.as_oid() == "1.3.6.1.5.5.7.48.1"

    def test_large_arc_roundtrip(self):
        dotted = "2.16.840.1.113733.1.7.23.6"  # Verisign EV policy
        assert der.decode_all(der.encode_oid(dotted)).as_oid() == dotted

    def test_invalid_oid_rejected(self):
        with pytest.raises(der.Asn1Error):
            der.encode_oid("5.1.2")
        with pytest.raises(der.Asn1Error):
            der.encode_oid("x.y")

    @given(
        st.lists(st.integers(min_value=0, max_value=2**28), min_size=1, max_size=8)
    )
    def test_roundtrip_property(self, arcs):
        dotted = "1.3." + ".".join(str(a) for a in arcs)
        assert der.decode_all(der.encode_oid(dotted)).as_oid() == dotted


class TestStringsAndTimes:
    def test_boolean_roundtrip(self):
        assert der.decode_all(der.encode_boolean(True)).as_boolean() is True
        assert der.decode_all(der.encode_boolean(False)).as_boolean() is False

    def test_null(self):
        assert der.encode_null() == b"\x05\x00"

    def test_octet_string(self):
        node = der.decode_all(der.encode_octet_string(b"\x01\x02"))
        assert node.value == b"\x01\x02"

    def test_bit_string_strips_pad_byte(self):
        node = der.decode_all(der.encode_bit_string(b"\xaa\xbb"))
        assert node.as_bit_string() == b"\xaa\xbb"

    def test_bit_string_bad_unused_bits(self):
        with pytest.raises(der.Asn1Error):
            der.encode_bit_string(b"x", unused_bits=8)

    def test_utf8_string_roundtrip(self):
        node = der.decode_all(der.encode_utf8_string("café"))
        assert node.as_string() == "café"

    def test_printable_string_roundtrip(self):
        node = der.decode_all(der.encode_printable_string("example.com"))
        assert node.as_string() == "example.com"

    def test_ia5_string_roundtrip(self):
        node = der.decode_all(der.encode_ia5_string("http://crl.example/x"))
        assert node.as_string() == "http://crl.example/x"
        assert node.tag == der.Tag.IA5_STRING

    def test_utc_time_roundtrip(self):
        when = datetime.datetime(2015, 3, 31, 12, 30, 45, tzinfo=UTC)
        assert der.decode_all(der.encode_utc_time(when)).as_datetime() == when

    def test_utc_time_rejects_out_of_range_year(self):
        with pytest.raises(der.Asn1Error):
            der.encode_utc_time(datetime.datetime(2060, 1, 1, tzinfo=UTC))

    def test_generalized_time_roundtrip(self):
        when = datetime.datetime(2055, 1, 2, 3, 4, 5, tzinfo=UTC)
        node = der.decode_all(der.encode_generalized_time(when))
        assert node.as_datetime() == when

    @given(
        st.datetimes(
            min_value=datetime.datetime(1950, 1, 1),
            max_value=datetime.datetime(2049, 12, 31),
        )
    )
    def test_utc_time_roundtrip_property(self, when):
        when = when.replace(microsecond=0, tzinfo=UTC)
        assert der.decode_all(der.encode_utc_time(when)).as_datetime() == when


class TestComposite:
    def test_sequence_children(self):
        encoded = der.encode_sequence(der.encode_integer(1), der.encode_null())
        node = der.decode_all(encoded)
        assert node.tag == der.Tag.SEQUENCE
        assert len(node.children) == 2
        assert node.children[0].as_integer() == 1

    def test_nested_sequences(self):
        inner = der.encode_sequence(der.encode_integer(7))
        node = der.decode_all(der.encode_sequence(inner, inner))
        assert node.children[0].children[0].as_integer() == 7

    def test_set_sorts_children(self):
        a = der.encode_integer(2)
        b = der.encode_integer(1)
        assert der.encode_set(a, b) == der.encode_set(b, a)

    def test_context_tag_number(self):
        node = der.decode_all(der.encode_context(3, der.encode_integer(1)))
        assert node.context_number == 3
        assert node.is_constructed

    def test_primitive_context_tag(self):
        node = der.decode_all(der.encode_context(6, b"abc", constructed=False))
        assert node.context_number == 6
        assert not node.is_constructed
        assert node.value == b"abc"

    def test_context_tag_out_of_range(self):
        with pytest.raises(der.Asn1Error):
            der.encode_context(31, b"")


class TestDecodeErrors:
    def test_truncated_value(self):
        with pytest.raises(der.Asn1Error):
            der.decode_all(b"\x02\x05\x01")

    def test_trailing_bytes(self):
        with pytest.raises(der.Asn1Error):
            der.decode_all(der.encode_null() + b"\x00")

    def test_empty_input(self):
        with pytest.raises(der.Asn1Error):
            der.decode_all(b"")

    def test_indefinite_length_rejected(self):
        with pytest.raises(der.Asn1Error):
            der.decode_all(b"\x30\x80\x00\x00")

    def test_wrong_type_accessors(self):
        node = der.decode_all(der.encode_null())
        with pytest.raises(der.Asn1Error):
            node.as_integer()
        with pytest.raises(der.Asn1Error):
            node.as_oid()

    @given(st.binary(max_size=64))
    @settings(max_examples=200)
    def test_decoder_never_crashes_unexpectedly(self, blob):
        """Arbitrary bytes either decode or raise Asn1Error -- nothing else."""
        try:
            der.decode_all(blob)
        except der.Asn1Error:
            pass
