"""OID registry tests."""

from __future__ import annotations

import pytest

from repro.asn1.oid import OID, OIDRegistry, REGISTRY


class TestOidConstants:
    def test_ev_policy_set_contains_verisign(self):
        assert OID.EV_VERISIGN in OID.EV_POLICY_OIDS

    def test_dv_policy_is_not_ev(self):
        assert OID.DV_CABFORUM not in OID.EV_POLICY_OIDS

    def test_extension_oids_are_distinct(self):
        oids = {
            OID.BASIC_CONSTRAINTS,
            OID.CRL_DISTRIBUTION_POINTS,
            OID.CERTIFICATE_POLICIES,
            OID.AUTHORITY_INFO_ACCESS,
            OID.CRL_REASON,
            OID.CRL_NUMBER,
        }
        assert len(oids) == 6


class TestRegistry:
    def test_known_name(self):
        assert REGISTRY.name(OID.CRL_DISTRIBUTION_POINTS) == "cRLDistributionPoints"

    def test_unknown_oid_passthrough(self):
        assert REGISTRY.name("9.9.9") == "9.9.9"

    def test_reverse_lookup(self):
        assert REGISTRY.oid("cRLDistributionPoints") == OID.CRL_DISTRIBUTION_POINTS

    def test_reverse_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            REGISTRY.oid("nope")

    def test_register_custom(self):
        registry = OIDRegistry()
        registry.register("1.2.3.4", "testOid")
        assert registry.name("1.2.3.4") == "testOid"
        assert registry.oid("testOid") == "1.2.3.4"
        assert "1.2.3.4" in registry

    def test_contains(self):
        assert OID.AD_OCSP in REGISTRY
        assert "1.2.3.99" not in REGISTRY
