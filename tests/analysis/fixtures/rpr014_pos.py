"""RPR014 positive: stats exported via introspection, not the helper.

``vars``/``dataclasses.asdict``/``__dict__`` reflect field declaration
order, so reordering a dataclass silently reorders every report that
serialises it; the ``as_dict()`` helpers pin the export shape.
"""
import dataclasses
import json

from repro.exec.supervisor import FailureRecord
from repro.net.fetcher import FetchStats


def export_stats(stats: FetchStats) -> str:
    return json.dumps(vars(stats), sort_keys=True)


def export_failure(record: FailureRecord) -> str:
    return json.dumps(dataclasses.asdict(record), sort_keys=True)
