"""RPR001 positive: reads the host clock directly."""
import datetime
import time


def stamp():
    return datetime.datetime.now(), time.time()
