"""Positive fixture: deprecated flat facade aliases in-repo."""

from repro import api
from repro.api import run_study  # RPR016: flat import


def bad_attribute_use():
    return api.new_study(scale=0.002)  # RPR016: flat attribute


def bad_corpus_call(path):
    return api.build_corpus(path, scale=0.002)  # RPR016: flat attribute


def uses_the_import():
    return run_study(experiment="fig2")
