"""RPR006 negative: DER built via the named constants."""
from repro.asn1 import der

SEQUENCE_HEADER = der.encode_tlv(der.Tag.SEQUENCE, b"")


def is_sequence(node) -> bool:
    return node.tag == der.Tag.SEQUENCE
