"""RPR013 positive: ambient-RNG and wall-clock values feeding digests.

The digest inputs are what the paper's replayable corpus hashes over,
so a value read from the host (clock or process entropy) makes two
"identical" runs produce different fingerprints.
"""
import hashlib
import os


def fingerprint(payload: bytes) -> str:
    salt = os.urandom(8)
    digest = hashlib.sha256()
    digest.update(payload)
    digest.update(salt)
    return digest.hexdigest()
