"""RPR002 negative: an explicitly seeded RNG threaded as a parameter."""
import random


def draw(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random()
