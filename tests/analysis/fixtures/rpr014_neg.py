"""RPR014 negative: stats exported through the fixed-key helpers."""
import json

from repro.exec.supervisor import FailureRecord
from repro.net.fetcher import FetchStats


def export_stats(stats: FetchStats) -> str:
    return json.dumps(stats.as_dict(), sort_keys=True)


def export_failure(record: FailureRecord) -> str:
    return json.dumps(record.as_dict(), sort_keys=True)
