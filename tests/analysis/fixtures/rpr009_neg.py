"""RPR009 negative: construct the container inside the call."""


def collect(item, bucket=None):
    bucket = list(bucket or ())
    bucket.append(item)
    return bucket
