"""RPR001 negative: time arrives as data (a SimClock or datetime)."""
import datetime


def stamp(clock):
    return clock.now + datetime.timedelta(seconds=5)
