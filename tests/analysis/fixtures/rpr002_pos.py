"""RPR002 positive: ambient randomness from the global RNG and the OS."""
import os
import random
import uuid


def draw():
    roll = random.randint(1, 6)
    rng = random.Random()
    return roll, rng.random(), os.urandom(8), uuid.uuid4()
