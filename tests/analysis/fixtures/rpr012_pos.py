"""RPR012 positive: direct pool construction outside repro/exec."""
import concurrent.futures
import multiprocessing


def fan_out(fn, items):
    with concurrent.futures.ProcessPoolExecutor(max_workers=4) as pool:
        return list(pool.map(fn, items))


def fan_out_threads(fn, items):
    with concurrent.futures.ThreadPoolExecutor() as pool:
        return list(pool.map(fn, items))


def spawn(fn):
    worker = multiprocessing.Process(target=fn)
    worker.start()
    return worker
