"""RPR005 negative: the annotated dispatch covers every member."""
import enum


class Signal(enum.Enum):
    RED = "red"
    AMBER = "amber"
    GREEN = "green"


# repro: exhaustive(Signal)
GO = {
    Signal.RED: False,
    Signal.AMBER: False,
    Signal.GREEN: True,
}
