"""RPR015 negative: mechanisms obtained through the registry."""
from repro.mechanisms import RevocationMechanism, create, create_suite, get


def registry_sweep(study):
    return [mechanism.name for mechanism in create_suite(study)]


def one_mechanism(study, name):
    assert issubclass(get(name), RevocationMechanism)
    return create(name, study)


def restricted(study):
    return create_suite(study, names=("ocsp", "crl"))
