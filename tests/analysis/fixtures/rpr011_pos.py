"""Positive fixture: a @given test with no derandomization anywhere."""

from hypothesis import given
from hypothesis import strategies as st


@given(st.integers())
def test_addition_commutes(x):
    assert x + 1 == 1 + x
