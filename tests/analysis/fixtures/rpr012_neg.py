"""RPR012 negative: fan-out routed through the execution layer."""
from repro.exec import Supervisor, SupervisorConfig, pool_map


def fan_out(fn, items):
    return pool_map(fn, items, workers=4)


def fan_out_supervised(tasks, fn):
    supervisor = Supervisor(SupervisorConfig(workers=4))
    return supervisor.run(tasks, fn)
