"""RPR007 positive fixture experiment: never registered in runner.py."""

EXPERIMENT_ID = "fig99"
TITLE = "An unregistered figure"
