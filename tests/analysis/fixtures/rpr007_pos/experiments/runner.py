"""Runner that forgot to register fig99."""

ALL_EXPERIMENTS = {}
