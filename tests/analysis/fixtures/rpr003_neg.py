"""RPR003 negative: everything is sorted before it is emitted."""
import json


def emit(counts: dict, names) -> str:
    return json.dumps({"unique": sorted(set(names)), "vals": sorted(counts.values())})
