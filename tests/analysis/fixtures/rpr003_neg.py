"""RPR003 negative: everything is sorted (or order-neutral) on emit.

``join_tokens`` and ``count_kinds`` pin two historical false
positives: ``"".join(sorted(...))`` is ordered by construction, and
``len({...})`` inside an f-string reduces the set to a number -- no
iteration order ever reaches the artifact.
"""
import json


def emit(counts: dict, names) -> str:
    return json.dumps({"unique": sorted(set(names)), "vals": sorted(counts.values())})


def join_tokens(tokens) -> str:
    return json.dumps("".join(sorted(set(tokens))))


def count_kinds(items) -> str:
    return json.dumps(f"saw {len({item.kind for item in items})} kinds")
