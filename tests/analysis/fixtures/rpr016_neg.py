"""Negative fixture: the namespaced facade and component re-exports."""

from repro import api
from repro.api import LinkProfile, format_table  # components, not aliases


def good_namespaced_use():
    study = api.study.new_study(scale=0.002)
    api.study.run_study(experiment="fig2")
    return api.corpus.info, api.trace.render, api.serve.run_fleet, study


def good_components():
    return LinkProfile(), format_table(["h"], [["v"]])


def good_alias_table_introspection():
    # reading the mapping itself is fine; only *using* an alias is not.
    return sorted(api.DEPRECATED_ALIASES)
