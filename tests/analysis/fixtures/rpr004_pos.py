"""RPR004 positive: a bare except and a silent broad except."""


def load(path):
    try:
        return open(path).read()
    except:
        return None


def probe(fn):
    try:
        fn()
    except Exception:
        pass
