"""RPR005 positive: the annotated dispatch drops a member."""
import enum


class Signal(enum.Enum):
    RED = "red"
    AMBER = "amber"
    GREEN = "green"


# repro: exhaustive(Signal)
GO = {
    Signal.RED: False,
    Signal.GREEN: True,
}
