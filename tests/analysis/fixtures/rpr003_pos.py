"""RPR003 positive: unordered values reaching a JSON artifact.

Covers both the in-expression case and the variable-indirection case
(the set is bound to a name and emitted statements later) -- the latter
is the dataflow engine's regression test: the purely syntactic rule it
replaced could not see it.
"""
import json


def emit(counts: dict, names) -> str:
    return json.dumps({"unique": list(set(names)), "vals": list(counts.values())})


def emit_indirect(names) -> str:
    uniq = set(names)
    return json.dumps(list(uniq))
