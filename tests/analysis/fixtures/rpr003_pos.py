"""RPR003 positive: unordered iteration feeding a JSON artifact."""
import json


def emit(counts: dict, names) -> str:
    return json.dumps({"unique": list(set(names)), "vals": list(counts.values())})
