"""Negative fixture: bare @given is fine under a derandomized conftest."""

from hypothesis import given
from hypothesis import strategies as st


@given(st.integers())
def test_addition_commutes(x):
    assert x + 1 == 1 + x
