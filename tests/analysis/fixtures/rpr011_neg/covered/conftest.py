"""Negative fixture: this conftest derandomizes the whole directory."""

from hypothesis import settings

settings.register_profile("repro", derandomize=True)
settings.load_profile("repro")
