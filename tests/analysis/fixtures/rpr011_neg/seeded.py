"""Negative fixture: @seed pins the example stream."""

from hypothesis import given, seed
from hypothesis import strategies as st


@seed(20151028)
@given(st.integers())
def test_addition_commutes(x):
    assert x + 1 == 1 + x
