"""Negative fixture: @settings(derandomize=True) on the test itself."""

from hypothesis import given, settings
from hypothesis import strategies as st


@settings(derandomize=True)
@given(st.integers())
def test_addition_commutes(x):
    assert x + 1 == 1 + x


def test_not_a_property_test():
    assert True  # no @given, rule must not even look
