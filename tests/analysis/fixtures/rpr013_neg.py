"""RPR013 negative: digest inputs derived from the seed.

A seeded ``random.Random`` and caller-supplied timestamps are
replayable, so hashing over them is fine.
"""
import hashlib
import random


def fingerprint(payload: bytes, seed: int, stamp: float) -> str:
    rng = random.Random(seed)
    salt = rng.getrandbits(64)
    digest = hashlib.sha256()
    digest.update(payload)
    digest.update(f"{salt}:{stamp}".encode())
    return digest.hexdigest()
