"""RPR010 positive: a module-level RNG every worker would share."""
import random

_RNG = random.Random(42)


def jitter() -> float:
    return _RNG.random()
