"""Runner with fig99 wired into ALL_EXPERIMENTS."""

from experiments import fig99

ALL_EXPERIMENTS = {"fig99": fig99}
