"""RPR007 negative fixture experiment: properly registered."""

EXPERIMENT_ID = "fig99"
TITLE = "A registered figure"
