"""RPR004 negative: named exceptions, failures surfaced to the caller."""


def load(path):
    try:
        return open(path).read()
    except OSError as exc:
        raise RuntimeError(f"unreadable: {path}") from exc
