"""RPR008 negative: tolerance-based comparison."""
import math


def saturated(rate: float) -> bool:
    return math.isclose(rate, 1.0)
