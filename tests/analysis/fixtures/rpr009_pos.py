"""RPR009 positive: a mutable default aliased across calls."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket
