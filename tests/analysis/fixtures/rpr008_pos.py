"""RPR008 positive: exact equality on a float expression."""


def saturated(rate: float) -> bool:
    return rate == 1.0
