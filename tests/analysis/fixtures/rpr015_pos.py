"""RPR015 positive: concrete mechanisms constructed outside the registry."""
from repro.mechanisms import CrlSetMechanism
from repro.mechanisms.crl import CrlMechanism
from repro.mechanisms.ocsp import OcspMechanism as Responder


def hand_rolled_sweep(study):
    mechanisms = [
        CrlMechanism(study),
        Responder(study),
        CrlSetMechanism(study),
    ]
    return [mechanism.name for mechanism in mechanisms]
