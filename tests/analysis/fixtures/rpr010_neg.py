"""RPR010 negative: the RNG is built where it is consumed."""
import random


def jitter(seed: int) -> float:
    return random.Random(seed).random()
