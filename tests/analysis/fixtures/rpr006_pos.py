"""RPR006 positive: raw DER tag bytes away from repro.asn1."""

SEQUENCE_HEADER = b"\x30\x03"


def is_sequence(node) -> bool:
    return node.tag == 0x30
