"""Engine mechanics: fingerprints, baseline, noqa, cache, parse errors."""

from __future__ import annotations

import json

from repro.analysis.baseline import load_baseline, partition, write_baseline
from repro.analysis.cache import ResultCache
from repro.analysis.engine import ENGINE_VERSION, analyze_source
from repro.analysis.findings import Finding
from repro.analysis.rules import default_rules

VIOLATION = "import time\n\n\ndef f():\n    return time.time()\n"


def _analyze(source: str, rel_path: str = "repro/sample.py"):
    return analyze_source(source, rel_path, default_rules())


class TestFingerprints:
    def test_stable_under_line_shift(self):
        before = _analyze(VIOLATION)
        after = _analyze("# a comment\n\n\n" + VIOLATION)
        assert [f.rule for f in before] == ["RPR001"]
        assert [f.fingerprint for f in before] == [
            f.fingerprint for f in after
        ]
        assert before[0].line != after[0].line

    def test_identical_lines_get_distinct_fingerprints(self):
        twice = (
            "import time\n\n\ndef f():\n"
            "    a = time.time()\n"
            "    a = time.time()\n"
            "    return a\n"
        )
        findings = _analyze(twice)
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint

    def test_fingerprint_differs_across_files(self):
        one = _analyze(VIOLATION, "repro/a.py")
        two = _analyze(VIOLATION, "repro/b.py")
        assert one[0].fingerprint != two[0].fingerprint


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = _analyze(VIOLATION)
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        accepted = load_baseline(path)
        new, baselined = partition(findings, accepted)
        assert new == []
        assert baselined == findings

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_baseline_survives_line_shift(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, _analyze(VIOLATION))
        shifted = _analyze("# new header comment\n" + VIOLATION)
        new, baselined = partition(shifted, load_baseline(path))
        assert new == [] and len(baselined) == 1

    def test_new_violation_not_masked(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, _analyze(VIOLATION))
        grown = VIOLATION + "\n\ndef g():\n    return time.monotonic()\n"
        new, _ = partition(_analyze(grown), load_baseline(path))
        assert [f.rule for f in new] == ["RPR001"]
        assert "monotonic" in new[0].message


class TestNoqa:
    def test_line_noqa_suppresses(self):
        src = VIOLATION.replace(
            "time.time()", "time.time()  # repro: noqa RPR001"
        )
        assert _analyze(src) == []

    def test_noqa_other_rule_does_not_suppress(self):
        src = VIOLATION.replace(
            "time.time()", "time.time()  # repro: noqa RPR006"
        )
        assert [f.rule for f in _analyze(src)] == ["RPR001"]

    def test_blanket_noqa_suppresses(self):
        src = VIOLATION.replace("time.time()", "time.time()  # repro: noqa")
        assert _analyze(src) == []


class TestParseErrors:
    def test_syntax_error_is_a_finding(self):
        findings = _analyze("def broken(:\n")
        assert [f.rule for f in findings] == ["RPR000"]
        assert findings[0].fingerprint


class TestResultCache:
    def _cache(self, tmp_path, project_digest="p1"):
        return ResultCache(
            tmp_path / "cache", ENGINE_VERSION, "cfg1", project_digest
        )

    def test_hit_requires_matching_content_hash(self, tmp_path):
        cache = self._cache(tmp_path)
        findings = _analyze(VIOLATION)
        cache.store("repro/sample.py", "hash-a", findings)
        assert cache.load("repro/sample.py", "hash-a") == findings
        assert cache.load("repro/sample.py", "hash-b") is None

    def test_project_digest_invalidates(self, tmp_path):
        self._cache(tmp_path).store("repro/sample.py", "hash-a", [])
        other = self._cache(tmp_path, project_digest="p2")
        assert other.load("repro/sample.py", "hash-a") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.store("repro/sample.py", "hash-a", [])
        for entry in (tmp_path / "cache").glob("*.json"):
            entry.write_text("{not json")
        assert cache.load("repro/sample.py", "hash-a") is None

    def test_empty_findings_are_cached(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.store("repro/clean.py", "hash-a", [])
        assert cache.load("repro/clean.py", "hash-a") == []

    def test_findings_round_trip_serialisation(self):
        finding = Finding("RPR001", "a.py", 3, 7, "msg", "fp")
        assert Finding.from_dict(json.loads(json.dumps(finding.as_dict()))) == finding
