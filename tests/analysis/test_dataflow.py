"""Unit suite for the intraprocedural taint substrate (dataflow.py).

Each test lints a small snippet through the real engine and asserts on
the RPR003/RPR013/RPR014 findings the dataflow rules derive, including
the safety class of the attached suggestion -- the suite is the
contract for what propagates, what sanitises, and what may be autofixed.
"""

from __future__ import annotations

import textwrap

from repro.analysis.engine import analyze_source
from repro.analysis.findings import SAFETY_SAFE, SAFETY_UNSAFE
from repro.analysis.rules import default_rules


def lint(source: str, rule: str | None = None):
    findings = analyze_source(
        textwrap.dedent(source), "snippet.py", default_rules()
    )
    if rule is None:
        return findings
    return [f for f in findings if f.rule == rule]


# -- RPR003: unordered values reaching emit sinks ------------------------


def test_set_bound_to_name_and_emitted_later_is_flagged():
    # The regression that motivated the dataflow rewrite: the syntactic
    # rule only saw unordered constructors inside the sink call itself.
    findings = lint(
        """
        import json

        def emit(names):
            uniq = set(names)
            return json.dumps(list(uniq))
        """,
        "RPR003",
    )
    assert len(findings) == 1
    (finding,) = findings
    assert "constructed at line 5" in finding.message
    assert finding.suggestion is not None
    assert finding.suggestion.safety == SAFETY_SAFE
    assert finding.suggestion.replacement == "sorted(uniq)"


def test_taint_survives_tuple_unpacking():
    findings = lint(
        """
        import json

        def emit(x, y):
            a, b = set(x), sorted(y)
            return json.dumps([list(a), b])
        """,
        "RPR003",
    )
    assert len(findings) == 1
    assert findings[0].suggestion.replacement == "sorted(a)"


def test_taint_survives_augmented_assignment():
    findings = lint(
        """
        import json

        def emit(x):
            acc = []
            acc += list(set(x))
            return json.dumps(acc)
        """,
        "RPR003",
    )
    assert len(findings) == 1


def test_loop_carried_mutation_taints_the_accumulator():
    findings = lint(
        """
        import json

        def emit(items):
            acc = []
            for value in set(items):
                acc.append(value)
            return json.dumps(acc)
        """,
        "RPR003",
    )
    assert len(findings) == 1
    # The taint is embedded in acc's elements, so sorting the list at
    # the sink is not provably equivalent: review-only suggestion.
    assert findings[0].suggestion.safety == SAFETY_UNSAFE


def test_fstring_embedding_keeps_the_inner_carrier():
    findings = lint(
        """
        import json

        def emit(x):
            return json.dumps(f"items: {set(x)}")
        """,
        "RPR003",
    )
    assert len(findings) == 1
    assert findings[0].suggestion.replacement == "sorted(set(x))"
    assert findings[0].suggestion.safety == SAFETY_SAFE


def test_comprehension_over_tainted_iterable_is_its_own_carrier():
    findings = lint(
        """
        import json

        def emit(x):
            return json.dumps([v for v in set(x)])
        """,
        "RPR003",
    )
    assert len(findings) == 1
    assert findings[0].suggestion.replacement == "sorted([v for v in set(x)])"
    assert findings[0].suggestion.safety == SAFETY_SAFE


def test_extend_with_tainted_elements_taints_the_target():
    findings = lint(
        """
        import json

        def emit(items):
            seen = []
            seen.extend(set(items))
            return json.dumps(seen)
        """,
        "RPR003",
    )
    assert len(findings) == 1


def test_sorted_sanitises_through_a_variable():
    assert not lint(
        """
        import json

        def emit(names):
            ordered = sorted(set(names))
            return json.dumps(ordered)
        """,
        "RPR003",
    )


def test_membership_test_is_order_neutral():
    assert not lint(
        """
        import json

        def emit(x, key):
            return json.dumps(key in set(x))
        """,
        "RPR003",
    )


def test_join_of_sorted_is_clean():
    assert not lint(
        """
        import json

        def emit(tokens):
            return json.dumps("".join(sorted(set(tokens))))
        """,
        "RPR003",
    )


def test_len_of_set_inside_fstring_is_clean():
    assert not lint(
        """
        import json

        def emit(items):
            return json.dumps(f"saw {len({i.kind for i in items})} kinds")
        """,
        "RPR003",
    )


def test_unknown_call_boundary_sanitises_order():
    # An opaque helper may impose any order; flagging its result would
    # make the rule unusable, so order taint stops at the call.
    assert not lint(
        """
        import json

        def emit(x):
            return json.dumps(helper(set(x)))
        """,
        "RPR003",
    )


def test_taint_does_not_leak_across_functions():
    assert not lint(
        """
        import json

        def build(x):
            return set(x)

        def emit(s):
            return json.dumps(list(s))
        """,
        "RPR003",
    )


def test_dict_views_are_unordered_sources():
    findings = lint(
        """
        import json

        def emit(counts):
            vals = counts.values()
            return json.dumps(list(vals))
        """,
        "RPR003",
    )
    assert len(findings) == 1


# -- RPR013: nondeterministic digest inputs ------------------------------


def test_clock_value_flowing_into_digest_update():
    findings = lint(
        """
        import hashlib
        import time

        def fingerprint(payload):
            stamp = time.time()
            digest = hashlib.sha256()
            digest.update(payload)
            digest.update(str(stamp).encode())
            return digest.hexdigest()
        """,
        "RPR013",
    )
    assert len(findings) == 1
    assert "wall-clock" in findings[0].message


def test_ambient_rng_value_flowing_into_hashlib_call():
    findings = lint(
        """
        import hashlib
        import random

        def fingerprint(payload):
            salt = random.random()
            return hashlib.sha256(f"{payload}{salt}".encode()).hexdigest()
        """,
        "RPR013",
    )
    assert len(findings) == 1
    assert "ambient-RNG" in findings[0].message


def test_seeded_rng_values_are_replayable():
    assert not lint(
        """
        import hashlib
        import random

        def fingerprint(payload, seed):
            rng = random.Random(seed)
            salt = rng.getrandbits(64)
            return hashlib.sha256(f"{payload}{salt}".encode()).hexdigest()
        """,
        "RPR013",
    )


def test_caller_supplied_timestamp_is_clean():
    assert not lint(
        """
        import hashlib

        def fingerprint(payload, stamp):
            return hashlib.sha256(f"{payload}{stamp}".encode()).hexdigest()
        """,
        "RPR013",
    )


# -- RPR014: stats exported without the fixed-key helper -----------------


def test_vars_on_stats_object_flowing_to_json():
    findings = lint(
        """
        import json
        from repro.net.fetcher import FetchStats

        def export(stats: FetchStats):
            return json.dumps(vars(stats), sort_keys=True)
        """,
        "RPR014",
    )
    assert len(findings) == 1
    assert findings[0].suggestion is not None
    assert findings[0].suggestion.safety == SAFETY_SAFE
    assert findings[0].suggestion.replacement == "stats.as_dict()"


def test_asdict_through_a_variable_is_still_caught():
    findings = lint(
        """
        import dataclasses
        import json
        from repro.exec.supervisor import FailureRecord

        def export(record: FailureRecord):
            payload = dataclasses.asdict(record)
            return json.dumps(payload)
        """,
        "RPR014",
    )
    assert len(findings) == 1


def test_dunder_dict_access_is_caught():
    findings = lint(
        """
        import json
        from repro.net.fetcher import FetchStats

        def export(stats: FetchStats):
            return json.dumps(stats.__dict__)
        """,
        "RPR014",
    )
    assert len(findings) == 1
    assert findings[0].suggestion.replacement == "stats.as_dict()"


def test_as_dict_helper_is_the_sanctioned_path():
    assert not lint(
        """
        import json
        from repro.net.fetcher import FetchStats

        def export(stats: FetchStats):
            return json.dumps(stats.as_dict(), sort_keys=True)
        """,
        "RPR014",
    )


def test_vars_on_unknown_type_is_not_flagged():
    assert not lint(
        """
        import json

        def export(obj):
            return json.dumps(vars(obj))
        """,
        "RPR014",
    )


# -- cross-cutting -------------------------------------------------------


def test_noqa_suppresses_dataflow_findings():
    assert not lint(
        """
        import json

        def emit(names):
            uniq = set(names)
            return json.dumps(list(uniq))  # repro: noqa RPR003
        """,
        "RPR003",
    )


def test_flows_are_deduplicated_per_sink_and_carrier():
    # Two unordered taints reaching one sink through one carrier yield
    # one finding, not one per taint.
    findings = lint(
        """
        import json

        def emit(names, counts):
            payload = {"u": list(set(names)), "v": list(counts.values())}
            return json.dumps(payload)
        """,
        "RPR003",
    )
    assert len(findings) == 1
