"""Autofix machinery: span application, overlap policy, CLI --fix/--diff."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import main
from repro.analysis.findings import (
    SAFETY_SAFE,
    SAFETY_UNSAFE,
    Finding,
    Suggestion,
)
from repro.analysis.fixes import apply_suggestions, fixable, render_diff


def sug(line, col, end_col, replacement, end_line=None, safety=SAFETY_SAFE):
    return Suggestion(
        line=line,
        col=col,
        end_line=end_line or line,
        end_col=end_col,
        replacement=replacement,
        safety=safety,
    )


# -- apply_suggestions ---------------------------------------------------


def test_single_span_replacement():
    outcome = apply_suggestions("x = set(y)\n", [sug(1, 4, 10, "sorted(y)")])
    assert outcome.source == "x = sorted(y)\n"
    assert len(outcome.applied) == 1


def test_multiple_spans_apply_back_to_front():
    source = "a = set(x)\nb = set(y)\n"
    outcome = apply_suggestions(
        source,
        [sug(1, 4, 10, "sorted(x)"), sug(2, 4, 10, "sorted(y)")],
    )
    assert outcome.source == "a = sorted(x)\nb = sorted(y)\n"


def test_overlapping_spans_keep_the_earlier_one():
    source = "emit(set(x))\n"
    outcome = apply_suggestions(
        source,
        [sug(1, 5, 11, "sorted(set(x))"), sug(1, 0, 12, "other(x)")],
    )
    assert outcome.source == "other(x)\n"
    assert outcome.skipped_overlap == 1


def test_duplicate_spans_apply_once():
    outcome = apply_suggestions(
        "x = set(y)\n",
        [sug(1, 4, 10, "sorted(y)"), sug(1, 4, 10, "sorted(y)")],
    )
    assert outcome.source == "x = sorted(y)\n"
    assert outcome.skipped_overlap == 1


def test_columns_are_utf8_byte_offsets():
    # "é" is two bytes in UTF-8; ast reports byte columns, and the
    # applier must honour that or every later span on the line skews.
    source = 'name = "é"; x = set(y)\n'
    col = source.encode("utf-8").index(b"set(y)")
    outcome = apply_suggestions(source, [sug(1, col, col + 6, "sorted(y)")])
    assert outcome.source == 'name = "é"; x = sorted(y)\n'


def test_out_of_range_span_is_ignored():
    outcome = apply_suggestions("x = 1\n", [sug(9, 0, 4, "nope")])
    assert outcome.source == "x = 1\n"
    assert not outcome.changed


def test_fixable_filters_to_safe_suggestions():
    def finding(suggestion):
        return Finding("RPR003", "a.py", 1, 0, "m", "fp", suggestion)

    findings = [
        finding(None),
        finding(sug(1, 0, 3, "x", safety=SAFETY_UNSAFE)),
        finding(sug(1, 0, 3, "y")),
    ]
    assert [f.suggestion.replacement for f in fixable(findings)] == ["y"]


def test_render_diff_is_a_unified_diff():
    diff = render_diff("src/m.py", "a = set(x)\n", "a = sorted(x)\n")
    assert diff.startswith("--- a/src/m.py")
    assert "+a = sorted(x)" in diff
    assert render_diff("src/m.py", "same\n", "same\n") == ""


# -- CLI integration -----------------------------------------------------

PYPROJECT = """\
[tool.repro.analysis]
paths = ["src"]
"""

FIXABLE = """\
import json


def emit(names, counts):
    uniq = set(names)
    return json.dumps({"unique": list(uniq), "vals": list(counts.values())})
"""

FIXED = """\
import json


def emit(names, counts):
    uniq = set(names)
    return json.dumps({"unique": list(sorted(uniq)), "vals": list(sorted(counts.values()))})
"""


@pytest.fixture
def project(tmp_path, monkeypatch):
    (tmp_path / "pyproject.toml").write_text(PYPROJECT)
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text(FIXABLE)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_fix_applies_safe_edits_and_exits_clean(project, capsys):
    assert main(["--fix"]) == 0
    assert (project / "src" / "mod.py").read_text() == FIXED
    _, err = capsys.readouterr()
    assert "2 edit(s) applied" in err


def test_fix_is_idempotent(project, capsys):
    assert main(["--fix"]) == 0
    after_first = (project / "src" / "mod.py").read_text()
    assert main(["--fix"]) == 0
    assert (project / "src" / "mod.py").read_text() == after_first
    _, err = capsys.readouterr()
    assert "0 edit(s) applied" in err


def test_diff_previews_without_writing(project, capsys):
    assert main(["--diff"]) == 1  # the on-disk tree still has findings
    assert (project / "src" / "mod.py").read_text() == FIXABLE
    out, _ = capsys.readouterr()
    assert "--- a/src/mod.py" in out
    assert "+++ b/src/mod.py" in out
    assert "sorted(uniq)" in out


def test_fix_json_document_reports_what_was_applied(project, capsys):
    assert main(["--fix", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["fixes"]["applied"] == 2
    assert document["fixes"]["files"] == ["src/mod.py"]
    assert document["fixes"]["rounds"] == 1
    assert document["fixes"]["written"] is True
    assert document["counts"]["new"] == 0


def test_diff_json_document_carries_diffs_and_disk_counts(project, capsys):
    assert main(["--diff", "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["fixes"]["written"] is False
    assert "src/mod.py" in document["diffs"]
    # Counts describe the tree the command left behind (unchanged).
    assert document["counts"]["new"] >= 1


def test_fix_exclude_paths_are_never_edited(project, capsys):
    (project / "pyproject.toml").write_text(
        PYPROJECT + 'fix-exclude = ["src"]\n'
    )
    assert main(["--fix"]) == 1
    assert (project / "src" / "mod.py").read_text() == FIXABLE


def test_unsafe_suggestions_are_not_applied(project, capsys):
    # Taint embedded in a dict bound to a name: the suggestion targets
    # the whole payload and is review-only.
    (project / "src" / "mod.py").write_text(
        "import json\n"
        "\n"
        "\n"
        "def emit(names):\n"
        "    payload = {'u': list(set(names))}\n"
        "    return json.dumps(payload)\n"
    )
    before = (project / "src" / "mod.py").read_text()
    assert main(["--fix"]) == 1
    assert (project / "src" / "mod.py").read_text() == before
