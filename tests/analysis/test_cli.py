"""End-to-end CLI behaviour: exit codes, formats, baseline, cache."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import main
from repro.analysis.rules import ALL_RULES

PYPROJECT = """\
[tool.repro.analysis]
paths = ["src"]
"""

CLEAN = "def f(x):\n    return x + 1\n"
VIOLATION = "import time\n\n\ndef f():\n    return time.time()\n"


@pytest.fixture
def project(tmp_path, monkeypatch):
    (tmp_path / "pyproject.toml").write_text(PYPROJECT)
    src = tmp_path / "src"
    src.mkdir()
    (src / "clean.py").write_text(CLEAN)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_clean_tree_exits_zero(project, capsys):
    assert main([]) == 0
    out, err = capsys.readouterr()
    assert out == ""
    assert "0 new finding(s)" in err


def test_findings_exit_one_with_locations(project, capsys):
    (project / "src" / "bad.py").write_text(VIOLATION)
    assert main([]) == 1
    out, _ = capsys.readouterr()
    assert "RPR001" in out
    assert "src/bad.py:5:" in out


def test_json_format_is_machine_readable(project, capsys):
    (project / "src" / "bad.py").write_text(VIOLATION)
    assert main(["--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["counts"]["new"] == 1
    (finding,) = document["findings"]
    assert finding["rule"] == "RPR001"
    assert finding["path"] == "src/bad.py"
    assert finding["fingerprint"]


def test_update_baseline_then_green(project, capsys):
    (project / "src" / "bad.py").write_text(VIOLATION)
    assert main(["--update-baseline"]) == 0
    assert main([]) == 0
    _, err = capsys.readouterr()
    assert "1 baselined" in err
    # A *new* violation still fails even with the old one baselined.
    (project / "src" / "worse.py").write_text(VIOLATION)
    assert main([]) == 1


def test_unknown_path_is_usage_error(project, capsys):
    assert main(["does-not-exist"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_unknown_rule_code_is_usage_error(project, capsys):
    assert main(["--select", "RPR999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_corrupt_baseline_is_usage_error(project, capsys):
    (project / ".repro-analysis-baseline.json").write_text("{oops")
    assert main([]) == 2


def test_select_and_ignore_filter_rules(project):
    (project / "src" / "bad.py").write_text(VIOLATION)
    assert main(["--select", "RPR006"]) == 0
    assert main(["--select", "RPR001"]) == 1
    assert main(["--ignore", "RPR001"]) == 0


def test_syntax_error_fails_even_under_select(project, capsys):
    (project / "src" / "broken.py").write_text("def broken(:\n")
    assert main(["--select", "RPR006"]) == 1
    assert "RPR000" in capsys.readouterr().out


def test_cache_hits_and_invalidation(project, capsys):
    bad = project / "src" / "bad.py"
    bad.write_text(VIOLATION)
    assert main([]) == 1
    capsys.readouterr()
    assert main([]) == 1
    _, err = capsys.readouterr()
    assert "(2 cached)" in err
    # Editing the file invalidates its entry and re-analyses it.
    bad.write_text(CLEAN)
    assert main([]) == 0
    _, err = capsys.readouterr()
    assert "(1 cached)" in err


def test_no_cache_leaves_no_directory(project):
    assert main(["--no-cache"]) == 0
    assert not (project / ".repro-analysis-cache").exists()


def test_list_rules_prints_catalogue(project, capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for cls in ALL_RULES:
        assert cls.code in out
