"""Meta-check: every shipped rule still fires on its positive fixture.

This is the guard against rules rotting into no-ops: a rule whose
positive fixture stops producing a finding fails CI, and a rule without
fixtures fails CI.  Negative fixtures must be completely clean so the
catalogue never drifts toward false positives either.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.engine import analyze_source
from repro.analysis.findings import Finding
from repro.analysis.project import build_project_context
from repro.analysis.rules import ALL_RULES, default_rules

FIXTURES = Path(__file__).parent / "fixtures"
RULE_CODES = [cls.code for cls in ALL_RULES]


def _fixture_files(code: str, polarity: str) -> list[tuple[str, Path]]:
    """(rel_path, abs_path) pairs for one rule's fixture, either a single
    module or a directory tree (cross-file rules like RPR007)."""
    stem = f"{code.lower()}_{polarity}"
    single = FIXTURES / f"{stem}.py"
    if single.is_file():
        return [(f"repro/fixtures/{single.name}", single)]
    tree = FIXTURES / stem
    assert tree.is_dir(), f"no fixture for {code} {polarity}"
    return sorted(
        (path.relative_to(tree).as_posix(), path)
        for path in tree.rglob("*.py")
    )


def _analyze_fixture(code: str, polarity: str) -> list[Finding]:
    files = _fixture_files(code, polarity)
    project = build_project_context(files)
    rules = default_rules()
    findings: list[Finding] = []
    for rel_path, path in files:
        findings.extend(
            analyze_source(
                path.read_text(encoding="utf-8"), rel_path, rules, project
            )
        )
    return findings


@pytest.mark.parametrize("code", RULE_CODES)
def test_positive_fixture_fires(code):
    findings = _analyze_fixture(code, "pos")
    assert any(f.rule == code for f in findings), (
        f"{code} no longer fires on its positive fixture -- the rule "
        f"has rotted into a no-op: {[f.render() for f in findings]}"
    )


@pytest.mark.parametrize("code", RULE_CODES)
def test_negative_fixture_clean(code):
    findings = _analyze_fixture(code, "neg")
    assert findings == [], [f.render() for f in findings]


def test_every_rule_has_both_fixtures():
    for code in RULE_CODES:
        for polarity in ("pos", "neg"):
            stem = f"{code.lower()}_{polarity}"
            assert (FIXTURES / f"{stem}.py").is_file() or (
                FIXTURES / stem
            ).is_dir(), f"missing fixture {stem}"


def test_rule_codes_are_unique_and_sequential():
    assert len(set(RULE_CODES)) == len(RULE_CODES)
    assert RULE_CODES == sorted(RULE_CODES)


def test_rpr016_alias_set_matches_the_facade():
    """RPR016's hard-coded alias set and the facade's live alias table
    move together: retiring or adding a flat alias updates both or
    fails here."""
    from repro.analysis.rules import FLAT_API_ALIASES
    from repro.api import DEPRECATED_ALIASES

    assert FLAT_API_ALIASES == frozenset(DEPRECATED_ALIASES)
