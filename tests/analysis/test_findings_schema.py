"""Golden test: the exact ``--format json`` document, byte for byte.

Downstream tooling (the CI artifact, editor integrations) parses this
document, so its shape -- key set, key ordering under ``sort_keys``,
the nested ``suggestion`` object -- is a contract.  Any intentional
schema change must update this golden alongside an ENGINE_VERSION
review.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import main

PYPROJECT = """\
[tool.repro.analysis]
paths = ["src"]
"""

SOURCE = """\
import json


def emit(names):
    uniq = set(names)
    return json.dumps(list(uniq))
"""

GOLDEN = {
    "baselined": [],
    "counts": {
        "baselined": 0,
        "files": 1,
        "findings": 1,
        "new": 1,
    },
    "engine_version": "5",
    "findings": [
        {
            "col": 27,
            "fingerprint": "e78ec113e830c2b9",
            "line": 6,
            "message": (
                "set(...) constructed at line 5 flows into emit sink "
                "json.dumps(...) with no defined order; wrap it in "
                "sorted(...)"
            ),
            "path": "src/mod.py",
            "rule": "RPR003",
            "suggestion": {
                "col": 27,
                "description": (
                    "wrap the unordered value in sorted(...) at the "
                    "emit site"
                ),
                "end_col": 31,
                "end_line": 6,
                "line": 6,
                "replacement": "sorted(uniq)",
                "safety": "safe",
            },
        }
    ],
    "fixes": {
        "applied": 0,
        "files": [],
        "rounds": 0,
        "written": False,
    },
}


@pytest.fixture
def project(tmp_path, monkeypatch):
    (tmp_path / "pyproject.toml").write_text(PYPROJECT)
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text(SOURCE)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_json_document_matches_golden_exactly(project, capsys):
    assert main(["--no-cache", "--format", "json"]) == 1
    out = capsys.readouterr().out
    # Byte-exact: pins both the content and the sort_keys rendering.
    assert out == json.dumps(GOLDEN, indent=2, sort_keys=True) + "\n"


def test_clean_tree_document_shape(project, capsys):
    (project / "src" / "mod.py").write_text("x = 1\n")
    assert main(["--no-cache", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert sorted(document) == [
        "baselined",
        "counts",
        "engine_version",
        "findings",
        "fixes",
    ]
    assert document["findings"] == []
    assert document["counts"] == {
        "baselined": 0,
        "files": 1,
        "findings": 0,
        "new": 0,
    }
