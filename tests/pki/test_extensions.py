"""X.509 extension encode/decode tests."""

from __future__ import annotations

from repro.asn1 import der
from repro.asn1.oid import OID
from repro.pki.extensions import (
    AuthorityInfoAccess,
    BasicConstraints,
    CertificatePolicies,
    CrlDistributionPoints,
    Extension,
    is_reachable_url,
)


class TestReachability:
    def test_http_reachable(self):
        assert is_reachable_url("http://crl.example/x.crl")
        assert is_reachable_url("https://crl.example/x.crl")

    def test_ldap_and_file_ignored(self):
        # Paper §3.2: only http[s] distribution points count.
        assert not is_reachable_url("ldap://dir.example/cn=crl")
        assert not is_reachable_url("file:///etc/crl.pem")


class TestBasicConstraints:
    def test_ca_roundtrip(self):
        ext = BasicConstraints(is_ca=True, path_length=2).to_extension()
        parsed = BasicConstraints.from_extension(ext)
        assert parsed.is_ca and parsed.path_length == 2

    def test_leaf_roundtrip(self):
        parsed = BasicConstraints.from_extension(
            BasicConstraints(is_ca=False).to_extension()
        )
        assert not parsed.is_ca and parsed.path_length is None

    def test_critical_flag(self):
        assert BasicConstraints(is_ca=True).to_extension().critical


class TestCrlDistributionPoints:
    def test_roundtrip(self):
        urls = ("http://crl.a.example/1.crl", "http://crl.b.example/2.crl")
        ext = CrlDistributionPoints(urls).to_extension()
        assert CrlDistributionPoints.from_extension(ext).urls == urls

    def test_reachable_filter(self):
        cdp = CrlDistributionPoints(
            ("ldap://x/crl", "http://crl.example/a.crl")
        )
        assert cdp.reachable_urls == ("http://crl.example/a.crl",)

    def test_empty(self):
        assert CrlDistributionPoints().reachable_urls == ()


class TestAuthorityInfoAccess:
    def test_roundtrip_ocsp_and_issuers(self):
        aia = AuthorityInfoAccess(
            ocsp_urls=("http://ocsp.example/q",),
            ca_issuer_urls=("http://ca.example/ca.crt",),
        )
        parsed = AuthorityInfoAccess.from_extension(aia.to_extension())
        assert parsed.ocsp_urls == aia.ocsp_urls
        assert parsed.ca_issuer_urls == aia.ca_issuer_urls

    def test_reachable_ocsp_filter(self):
        aia = AuthorityInfoAccess(ocsp_urls=("ldap://x", "http://o.example/q"))
        assert aia.reachable_ocsp_urls == ("http://o.example/q",)


class TestCertificatePolicies:
    def test_ev_detection(self):
        assert CertificatePolicies((OID.EV_VERISIGN,)).is_ev
        assert CertificatePolicies((OID.EV_CABFORUM,)).is_ev

    def test_dv_not_ev(self):
        assert not CertificatePolicies((OID.DV_CABFORUM,)).is_ev

    def test_roundtrip(self):
        policies = CertificatePolicies((OID.EV_VERISIGN, OID.DV_CABFORUM))
        parsed = CertificatePolicies.from_extension(policies.to_extension())
        assert parsed.policy_oids == policies.policy_oids


class TestRawExtension:
    def test_roundtrip_with_critical(self):
        ext = Extension("1.2.3.4", critical=True, value=der.encode_null())
        parsed = Extension.from_der_node(der.decode_all(ext.to_der()))
        assert parsed == ext

    def test_roundtrip_non_critical_omits_default(self):
        ext = Extension("1.2.3.4", critical=False, value=der.encode_null())
        encoded = ext.to_der()
        # DER: default values must be omitted.
        assert der.encode_boolean(False) not in encoded
        assert Extension.from_der_node(der.decode_all(encoded)) == ext
