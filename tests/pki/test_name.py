"""Distinguished name tests."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.asn1 import der
from repro.pki.name import Name


class TestNameConstruction:
    def test_make_with_all_fields(self):
        name = Name.make("example.com", organization="Example Inc", country="US")
        assert name.common_name == "example.com"
        assert name.organization == "Example Inc"

    def test_make_cn_only(self):
        name = Name.make("example.com")
        assert name.common_name == "example.com"
        assert name.organization is None

    def test_equality_is_structural(self):
        assert Name.make("a", organization="o") == Name.make("a", organization="o")
        assert Name.make("a") != Name.make("b")

    def test_order_matters(self):
        # Chain building matches issuer/subject exactly, including order.
        a = Name((("2.5.4.3", "x"), ("2.5.4.10", "y")))
        b = Name((("2.5.4.10", "y"), ("2.5.4.3", "x")))
        assert a != b

    def test_hashable(self):
        assert len({Name.make("a"), Name.make("a"), Name.make("b")}) == 2

    def test_str_rendering(self):
        text = str(Name.make("example.com", organization="Org"))
        assert "commonName=example.com" in text
        assert "organizationName=Org" in text


class TestNameDer:
    def test_roundtrip(self):
        name = Name.make("example.com", organization="Example", country="US")
        node = der.decode_all(name.to_der())
        assert Name.from_der_node(node) == name

    def test_empty_name_roundtrip(self):
        name = Name(())
        assert Name.from_der_node(der.decode_all(name.to_der())) == name

    @given(
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
            min_size=1,
            max_size=40,
        )
    )
    def test_roundtrip_property(self, cn):
        name = Name.make(cn)
        assert Name.from_der_node(der.decode_all(name.to_der())) == name
