"""Signature backend tests: both the hash simulator and Ed25519."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pki.keys import Ed25519Backend, KeyPair, SimBackend, default_backend


class TestSimBackend:
    def test_deterministic_generation(self):
        a = KeyPair.generate("seed-1")
        b = KeyPair.generate("seed-1")
        assert a.public_key == b.public_key
        assert a.private_key == b.private_key

    def test_different_seeds_differ(self):
        assert KeyPair.generate("a").public_key != KeyPair.generate("b").public_key

    def test_sign_verify_roundtrip(self):
        keys = KeyPair.generate("seed")
        message = b"hello revocation"
        assert keys.verify(message, keys.sign(message))

    def test_wrong_key_fails_verification(self):
        signer = KeyPair.generate("signer")
        other = KeyPair.generate("other")
        signature = signer.sign(b"msg")
        assert not other.verify(b"msg", signature)

    def test_tampered_message_fails(self):
        keys = KeyPair.generate("seed")
        signature = keys.sign(b"msg")
        assert not keys.verify(b"msg2", signature)

    def test_tampered_signature_fails(self):
        keys = KeyPair.generate("seed")
        signature = bytearray(keys.sign(b"msg"))
        signature[0] ^= 0xFF
        assert not keys.verify(b"msg", bytes(signature))

    def test_signature_size_is_realistic(self):
        keys = KeyPair.generate("seed")
        assert len(keys.sign(b"m")) == 256  # RSA-2048-sized

    def test_custom_signature_size(self):
        backend = SimBackend(signature_size=64)
        keys = KeyPair.generate("seed", backend)
        assert len(keys.sign(b"m")) == 64

    def test_signature_size_floor(self):
        with pytest.raises(ValueError):
            SimBackend(signature_size=16)

    def test_short_signature_rejected(self):
        keys = KeyPair.generate("seed")
        assert not keys.verify(b"m", b"short")

    def test_key_id_is_sha256_of_public_key(self):
        import hashlib

        keys = KeyPair.generate("seed")
        assert keys.key_id == hashlib.sha256(keys.public_key).digest()

    @given(st.binary(max_size=256))
    def test_verify_roundtrip_property(self, message):
        keys = KeyPair.generate("prop-seed")
        assert keys.verify(message, keys.sign(message))


class TestEd25519Backend:
    @pytest.fixture(scope="class")
    def backend(self):
        pytest.importorskip("cryptography")
        return Ed25519Backend()

    def test_sign_verify(self, backend):
        keys = KeyPair.generate("seed", backend)
        signature = keys.sign(b"msg")
        assert len(signature) == 64
        assert keys.verify(b"msg", signature)

    def test_cross_key_rejection(self, backend):
        a = KeyPair.generate("a", backend)
        b = KeyPair.generate("b", backend)
        assert not b.verify(b"msg", a.sign(b"msg"))

    def test_deterministic_from_seed(self, backend):
        assert (
            KeyPair.generate("x", backend).public_key
            == KeyPair.generate("x", backend).public_key
        )

    def test_interop_with_certificates(self, backend):
        """A certificate signed with Ed25519 verifies under that backend."""
        import datetime

        from repro.pki.certificate import CertificateBuilder
        from repro.pki.name import Name

        utc = datetime.timezone.utc
        ca_keys = KeyPair.generate("ca", backend)
        leaf_keys = KeyPair.generate("leaf", backend)
        cert = (
            CertificateBuilder()
            .subject(Name.make("leaf.example"))
            .issuer(Name.make("Test CA"))
            .serial_number(1)
            .public_key(leaf_keys.public_key)
            .validity(
                datetime.datetime(2014, 1, 1, tzinfo=utc),
                datetime.datetime(2016, 1, 1, tzinfo=utc),
            )
            .sign(ca_keys)
        )
        assert cert.verify_signature(ca_keys.public_key, backend)
        assert not cert.verify_signature(leaf_keys.public_key, backend)


def test_default_backend_is_sim():
    assert isinstance(default_backend(), SimBackend)
