"""Chain verification tests (§3.1 semantics)."""

from __future__ import annotations

import datetime

import pytest

from repro.ca.authority import CertificateAuthority
from repro.pki.keys import KeyPair
from repro.pki.verify import VerificationStatus, verify_certificate, verify_chain

UTC = datetime.timezone.utc
NB = datetime.datetime(2014, 1, 1, tzinfo=UTC)
NA = datetime.datetime(2016, 1, 1, tzinfo=UTC)


@pytest.fixture(scope="module")
def hierarchy():
    root = CertificateAuthority.create_root("Root", "verify/root", NB, NA)
    intermediate = root.create_intermediate(
        "Intermediate", "verify/int", NB, NA, include_crl=False, include_ocsp=False
    )
    leaf_keys = KeyPair.generate("verify/leaf")
    leaf = intermediate.issue_leaf(
        "site.example", leaf_keys.public_key, NB, NA,
        include_crl=False, include_ocsp=False,
    )
    return root, intermediate, leaf


class TestVerifyCertificate:
    def test_valid_link(self, hierarchy):
        root, intermediate, leaf = hierarchy
        status = verify_certificate(leaf, intermediate.certificate)
        assert status is VerificationStatus.OK

    def test_issuer_name_mismatch(self, hierarchy):
        root, intermediate, leaf = hierarchy
        assert (
            verify_certificate(leaf, root.certificate)
            is VerificationStatus.ISSUER_MISMATCH
        )

    def test_bad_signature(self, hierarchy):
        root, intermediate, leaf = hierarchy
        # Forge an issuer with the right name but the wrong key.
        impostor = CertificateAuthority.create_root(
            "Intermediate", "verify/impostor", NB, NA
        )
        assert (
            verify_certificate(leaf, impostor.certificate)
            is VerificationStatus.BAD_SIGNATURE
        )

    def test_non_ca_issuer_rejected(self, hierarchy):
        root, intermediate, leaf = hierarchy
        leaf2_keys = KeyPair.generate("verify/leaf2")
        leaf2 = intermediate.issue_leaf(
            "other.example", leaf2_keys.public_key, NB, NA,
            include_crl=False, include_ocsp=False,
        )
        # leaf trying to act as issuer of leaf2: names won't even match,
        # so build one whose issuer name equals leaf's subject.
        from repro.pki.certificate import CertificateBuilder
        from repro.pki.name import Name

        forged = (
            CertificateBuilder()
            .subject(Name.make("victim.example"))
            .issuer(leaf.subject)
            .serial_number(99)
            .public_key(leaf2_keys.public_key)
            .validity(NB, NA)
            .sign(KeyPair.generate("verify/leaf"))
        )
        assert verify_certificate(forged, leaf) is VerificationStatus.NOT_A_CA

    def test_date_checking(self, hierarchy):
        root, intermediate, leaf = hierarchy
        late = datetime.datetime(2017, 6, 1, tzinfo=UTC)
        early = datetime.datetime(2013, 6, 1, tzinfo=UTC)
        assert (
            verify_certificate(leaf, intermediate.certificate, at=late)
            is VerificationStatus.EXPIRED
        )
        assert (
            verify_certificate(leaf, intermediate.certificate, at=early)
            is VerificationStatus.NOT_YET_VALID
        )
        # The paper's pipeline ignores dates:
        assert (
            verify_certificate(
                leaf, intermediate.certificate, at=late, check_dates=False
            )
            is VerificationStatus.OK
        )


class TestVerifyChain:
    def test_full_chain_ok(self, hierarchy):
        root, intermediate, leaf = hierarchy
        chain = [leaf, intermediate.certificate, root.certificate]
        roots = {root.certificate.fingerprint}
        assert verify_chain(chain, roots) is VerificationStatus.OK

    def test_untrusted_root(self, hierarchy):
        root, intermediate, leaf = hierarchy
        chain = [leaf, intermediate.certificate, root.certificate]
        assert verify_chain(chain, set()) is VerificationStatus.UNTRUSTED_ROOT

    def test_empty_chain(self):
        assert verify_chain([], set()) is VerificationStatus.EMPTY_CHAIN

    def test_broken_middle_link(self, hierarchy):
        root, intermediate, leaf = hierarchy
        other_root = CertificateAuthority.create_root("Other", "verify/other", NB, NA)
        chain = [leaf, intermediate.certificate, other_root.certificate]
        roots = {other_root.certificate.fingerprint}
        assert verify_chain(chain, roots) is VerificationStatus.ISSUER_MISMATCH

    def test_chain_with_dates(self, hierarchy):
        root, intermediate, leaf = hierarchy
        chain = [leaf, intermediate.certificate, root.certificate]
        roots = {root.certificate.fingerprint}
        status = verify_chain(
            chain, roots, at=datetime.datetime(2015, 1, 1, tzinfo=UTC),
            check_dates=True,
        )
        assert status is VerificationStatus.OK
        status = verify_chain(
            chain, roots, at=datetime.datetime(2020, 1, 1, tzinfo=UTC),
            check_dates=True,
        )
        assert status is VerificationStatus.EXPIRED
