"""Certificate model tests: builder, DER round-trips, accessors."""

from __future__ import annotations

import datetime

import pytest

from repro.pki.certificate import Certificate, CertificateBuilder
from repro.pki.keys import KeyPair
from repro.pki.name import Name

UTC = datetime.timezone.utc
NB = datetime.datetime(2014, 1, 1, tzinfo=UTC)
NA = datetime.datetime(2016, 1, 1, tzinfo=UTC)


@pytest.fixture(scope="module")
def ca_keys():
    return KeyPair.generate("test-ca")


@pytest.fixture(scope="module")
def leaf_keys():
    return KeyPair.generate("test-leaf")


def build_leaf(ca_keys, leaf_keys, **extras) -> Certificate:
    builder = (
        CertificateBuilder()
        .subject(Name.make("site.example"))
        .issuer(Name.make("Test CA"))
        .serial_number(extras.pop("serial", 42))
        .public_key(leaf_keys.public_key)
        .validity(NB, NA)
    )
    if extras.get("crl"):
        builder.crl_urls([extras["crl"]])
    if extras.get("ocsp"):
        builder.ocsp_urls([extras["ocsp"]])
    if extras.get("ev"):
        builder.ev()
    return builder.sign(ca_keys)


class TestBuilder:
    def test_basic_fields(self, ca_keys, leaf_keys):
        cert = build_leaf(ca_keys, leaf_keys)
        assert cert.serial_number == 42
        assert cert.subject.common_name == "site.example"
        assert cert.issuer.common_name == "Test CA"
        assert cert.not_before == NB and cert.not_after == NA
        assert not cert.is_ca
        assert not cert.is_ev

    def test_missing_fields_rejected(self, ca_keys):
        with pytest.raises(ValueError, match="missing"):
            CertificateBuilder().sign(ca_keys)

    def test_invalid_validity_rejected(self, ca_keys, leaf_keys):
        with pytest.raises(ValueError):
            CertificateBuilder().validity(NA, NB)

    def test_negative_serial_rejected(self):
        with pytest.raises(ValueError):
            CertificateBuilder().serial_number(-1)

    def test_ca_certificate(self, ca_keys):
        cert = (
            CertificateBuilder()
            .subject(Name.make("Sub CA"))
            .issuer(Name.make("Test CA"))
            .serial_number(1)
            .public_key(ca_keys.public_key)
            .validity(NB, NA)
            .ca(path_length=0)
            .sign(ca_keys)
        )
        assert cert.is_ca
        assert cert.basic_constraints.path_length == 0

    def test_ev_flag(self, ca_keys, leaf_keys):
        assert build_leaf(ca_keys, leaf_keys, ev=True).is_ev

    def test_revocation_pointers(self, ca_keys, leaf_keys):
        cert = build_leaf(
            ca_keys,
            leaf_keys,
            crl="http://crl.example/1.crl",
            ocsp="http://ocsp.example/q",
        )
        assert cert.crl_urls == ("http://crl.example/1.crl",)
        assert cert.ocsp_urls == ("http://ocsp.example/q",)
        assert cert.has_revocation_info

    def test_never_revocable(self, ca_keys, leaf_keys):
        assert not build_leaf(ca_keys, leaf_keys).has_revocation_info


class TestDerRoundtrip:
    def test_full_roundtrip(self, ca_keys, leaf_keys):
        cert = build_leaf(
            ca_keys,
            leaf_keys,
            crl="http://crl.example/1.crl",
            ocsp="http://ocsp.example/q",
            ev=True,
        )
        parsed = Certificate.from_der(cert.to_der())
        assert parsed.serial_number == cert.serial_number
        assert parsed.subject == cert.subject
        assert parsed.issuer == cert.issuer
        assert parsed.not_before == cert.not_before
        assert parsed.public_key == cert.public_key
        assert parsed.crl_urls == cert.crl_urls
        assert parsed.ocsp_urls == cert.ocsp_urls
        assert parsed.is_ev
        assert parsed.signature == cert.signature
        assert parsed.to_der() == cert.to_der()

    def test_fingerprint_stable(self, ca_keys, leaf_keys):
        cert = build_leaf(ca_keys, leaf_keys)
        assert cert.fingerprint == Certificate.from_der(cert.to_der()).fingerprint

    def test_fingerprint_distinguishes(self, ca_keys, leaf_keys):
        a = build_leaf(ca_keys, leaf_keys, serial=1)
        b = build_leaf(ca_keys, leaf_keys, serial=2)
        assert a.fingerprint != b.fingerprint

    def test_encoded_size_realistic(self, ca_keys, leaf_keys):
        # Real web certs are ~1-2 KB; ours should be in that ballpark.
        size = len(build_leaf(ca_keys, leaf_keys, crl="http://c/x").to_der())
        assert 300 < size < 3000


class TestSemantics:
    def test_signature_verifies_under_issuer(self, ca_keys, leaf_keys):
        cert = build_leaf(ca_keys, leaf_keys)
        assert cert.verify_signature(ca_keys.public_key)
        assert not cert.verify_signature(leaf_keys.public_key)

    def test_is_fresh(self, ca_keys, leaf_keys):
        cert = build_leaf(ca_keys, leaf_keys)
        assert cert.is_fresh(datetime.datetime(2015, 1, 1, tzinfo=UTC))
        assert not cert.is_fresh(datetime.datetime(2013, 1, 1, tzinfo=UTC))
        assert not cert.is_fresh(datetime.datetime(2017, 1, 1, tzinfo=UTC))

    def test_self_signed_detection(self, ca_keys):
        cert = (
            CertificateBuilder()
            .subject(Name.make("Root"))
            .issuer(Name.make("Root"))
            .serial_number(1)
            .public_key(ca_keys.public_key)
            .validity(NB, NA)
            .ca()
            .sign(ca_keys)
        )
        assert cert.is_self_signed

    def test_spki_hash(self, ca_keys, leaf_keys):
        import hashlib

        cert = build_leaf(ca_keys, leaf_keys)
        assert cert.spki_hash == hashlib.sha256(leaf_keys.public_key).digest()
