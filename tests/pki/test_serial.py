"""Serial number policy tests."""

from __future__ import annotations

import random

import pytest

from repro.pki.serial import RandomLongSerialPolicy, SequentialSerialPolicy


class TestSequential:
    def test_monotone(self):
        policy = SequentialSerialPolicy(start=10)
        assert [policy.next_serial() for _ in range(3)] == [10, 11, 12]

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SequentialSerialPolicy(start=-1)

    def test_encoded_bytes_small(self):
        policy = SequentialSerialPolicy(start=1000)
        assert policy.approx_encoded_bytes <= 3


class TestRandomLong:
    def test_width(self):
        policy = RandomLongSerialPolicy(random.Random(1), bits=160)
        serial = policy.next_serial()
        assert serial.bit_length() <= 160
        assert policy.approx_encoded_bytes == 21

    def test_no_collisions(self):
        policy = RandomLongSerialPolicy(random.Random(1), bits=16)
        serials = {policy.next_serial() for _ in range(1000)}
        assert len(serials) == 1000

    def test_deterministic_given_rng(self):
        a = RandomLongSerialPolicy(random.Random(7))
        b = RandomLongSerialPolicy(random.Random(7))
        assert [a.next_serial() for _ in range(5)] == [
            b.next_serial() for _ in range(5)
        ]

    def test_bits_floor(self):
        with pytest.raises(ValueError):
            RandomLongSerialPolicy(random.Random(1), bits=4)

    def test_long_serials_inflate_crl_entries(self):
        """Paper footnote 11: long serials mean bigger CRL entries."""
        from repro.revocation.sizing import representative_entry_size

        assert representative_entry_size(21) > representative_entry_size(4) + 10
