"""Statistics helper tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import Cdf, describe, median, percentile, weighted_cdf


class TestCdf:
    def test_from_values(self):
        cdf = Cdf.from_values([3, 1, 2])
        assert cdf.values == (1, 2, 3)
        assert cdf.fractions == (pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0)

    def test_median_and_quantiles(self):
        cdf = Cdf.from_values(range(1, 101))
        assert cdf.median == 50
        assert cdf.quantile(0.9) == 90
        assert cdf.quantile(1.0) == 100
        assert cdf.quantile(0.0) == 1

    def test_fraction_at_or_below(self):
        cdf = Cdf.from_values([1, 2, 3, 4])
        assert cdf.fraction_at_or_below(2) == pytest.approx(0.5)
        assert cdf.fraction_at_or_below(0) == pytest.approx(0.0)
        assert cdf.fraction_at_or_below(10) == pytest.approx(1.0)

    def test_quantile_validation(self):
        cdf = Cdf.from_values([1])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)
        with pytest.raises(ValueError):
            Cdf((), ()).quantile(0.5)

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1))
    def test_fractions_monotone(self, values):
        cdf = Cdf.from_values(values)
        assert list(cdf.fractions) == sorted(cdf.fractions)
        assert cdf.fractions[-1] == pytest.approx(1.0)


class TestWeightedCdf:
    def test_weighting_changes_median(self):
        """The Figure 6 effect: raw vs certificate-weighted medians."""
        # 9 tiny CRLs covering 1 cert each, 1 huge CRL covering 1000.
        pairs = [(1.0, 1)] * 9 + [(1000.0, 1000)]
        raw = Cdf.from_values([value for value, _ in pairs])
        weighted = weighted_cdf(pairs)
        assert raw.median == pytest.approx(1.0)
        assert weighted.median == pytest.approx(1000.0)

    def test_zero_weights_dropped(self):
        cdf = weighted_cdf([(5.0, 0), (7.0, 2)])
        assert cdf.values == (7.0,)

    def test_empty(self):
        assert weighted_cdf([]).values == ()

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.integers(min_value=1, max_value=100),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50)
    def test_equal_weights_match_raw(self, pairs):
        values = [value for value, _ in pairs]
        raw = Cdf.from_values(values)
        equal = weighted_cdf((value, 1) for value in values)
        assert raw.median == equal.median


class TestScalars:
    def test_median(self):
        assert median([1, 2, 3]) == 2
        assert median([1, 2, 3, 4]) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            median([])

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 0.5) == 50
        assert percentile(values, 0.95) == 95
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 2.0)

    def test_describe(self):
        stats = describe([1, 2, 3, 4, 5])
        assert stats["min"] == 1 and stats["max"] == 5
        assert stats["median"] == 3
        assert stats["mean"] == 3
        assert stats["n"] == 5
