"""Timeline series and chain-set construction tests."""

from __future__ import annotations

import datetime

import pytest

from repro.core.chain import build_chain_sets
from repro.core.timelines import revocation_series
from repro.pki.keys import KeyPair
from repro.scan.records import LeafRecord

D = datetime.date


def leaf(cert_id, nb, na, birth, death, revoked=None, ev=False) -> LeafRecord:
    return LeafRecord(
        cert_id=cert_id,
        brand="X",
        intermediate_id=0,
        serial_number=cert_id,
        not_before=nb,
        not_after=na,
        birth=birth,
        death=death,
        is_ev=ev,
        crl_url=None,
        ocsp_url=None,
        revoked_at=revoked,
    )


class TestRevocationSeries:
    def test_handcrafted_fractions(self):
        leaves = [
            leaf(0, D(2014, 1, 1), D(2015, 1, 1), D(2014, 1, 1), D(2014, 12, 1)),
            leaf(
                1, D(2014, 1, 1), D(2015, 1, 1), D(2014, 1, 1), D(2014, 12, 1),
                revoked=D(2014, 6, 1),
            ),
        ]
        series = revocation_series(leaves, D(2014, 5, 1), D(2014, 7, 1), step_days=31)
        # Before the revocation: 0/2; after: 1/2.
        assert series.fresh_revoked_all[0] == pytest.approx(0.0)
        assert series.fresh_revoked_all[-1] == pytest.approx(0.5)

    def test_alive_differs_from_fresh(self):
        # Revoked cert taken down immediately: still fresh, not alive.
        leaves = [
            leaf(
                0, D(2014, 1, 1), D(2015, 1, 1), D(2014, 1, 1), D(2014, 6, 1),
                revoked=D(2014, 6, 1),
            ),
            leaf(1, D(2014, 1, 1), D(2015, 1, 1), D(2014, 1, 1), D(2014, 12, 30)),
        ]
        series = revocation_series(leaves, D(2014, 8, 1), D(2014, 8, 1))
        assert series.fresh_revoked_all[0] == pytest.approx(0.5)
        assert series.alive_revoked_all[0] == pytest.approx(0.0)

    def test_ev_series_subset(self):
        leaves = [
            leaf(
                0, D(2014, 1, 1), D(2015, 1, 1), D(2014, 1, 1), D(2014, 12, 1),
                revoked=D(2014, 3, 1), ev=True,
            ),
            leaf(1, D(2014, 1, 1), D(2015, 1, 1), D(2014, 1, 1), D(2014, 12, 1)),
        ]
        series = revocation_series(leaves, D(2014, 6, 1), D(2014, 6, 1))
        assert series.fresh_revoked_ev[0] == pytest.approx(1.0)
        assert series.fresh_revoked_all[0] == pytest.approx(0.5)

    def test_empty_denominator_is_zero(self):
        leaves = [leaf(0, D(2014, 1, 1), D(2014, 2, 1), D(2014, 1, 1), D(2014, 2, 1))]
        series = revocation_series(leaves, D(2015, 1, 1), D(2015, 1, 1))
        assert series.fresh_revoked_all[0] == pytest.approx(0.0)

    def test_peak_finder(self):
        leaves = [
            leaf(
                0, D(2014, 1, 1), D(2015, 1, 1), D(2014, 1, 1), D(2014, 12, 1),
                revoked=D(2014, 6, 1),
            ),
        ]
        series = revocation_series(leaves, D(2014, 5, 1), D(2014, 7, 1), step_days=31)
        peak_day, peak_value = series.peak_fresh_revoked()
        assert peak_value == pytest.approx(1.0) and peak_day >= D(2014, 6, 1)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            revocation_series([], D(2015, 1, 1), D(2014, 1, 1))


class TestChainSets:
    UTC = datetime.timezone.utc
    NB = datetime.datetime(2014, 1, 1, tzinfo=UTC)
    NA = datetime.datetime(2016, 1, 1, tzinfo=UTC)

    def _hierarchy(self):
        from repro.ca.authority import CertificateAuthority

        root = CertificateAuthority.create_root("CS Root", "cs-root", self.NB, self.NA)
        int1 = root.create_intermediate("CS Int 1", "cs-int1", self.NB, self.NA)
        int2 = int1.create_intermediate("CS Int 2", "cs-int2", self.NB, self.NA)
        leaf_a = int2.issue_leaf(
            "a.example", KeyPair.generate("cs-a").public_key, self.NB, self.NA,
            include_crl=False, include_ocsp=False,
        )
        leaf_b = int1.issue_leaf(
            "b.example", KeyPair.generate("cs-b").public_key, self.NB, self.NA,
            include_crl=False, include_ocsp=False,
        )
        return root, int1, int2, leaf_a, leaf_b

    def test_iterative_intermediate_discovery(self):
        root, int1, int2, leaf_a, leaf_b = self._hierarchy()
        # Shuffle so int2 precedes int1: only iteration can admit it.
        pool = [int2.certificate, leaf_a, leaf_b, int1.certificate]
        sets = build_chain_sets(pool, [root.certificate])
        assert sets.intermediate_count == 2
        assert sets.leaf_count == 2
        assert not sets.rejected

    def test_orphan_rejected(self):
        root, int1, int2, leaf_a, _ = self._hierarchy()
        from repro.ca.authority import CertificateAuthority

        stranger = CertificateAuthority.create_root(
            "Stranger", "cs-stranger", self.NB, self.NA
        )
        orphan = stranger.issue_leaf(
            "orphan.example", KeyPair.generate("cs-o").public_key, self.NB, self.NA,
            include_crl=False, include_ocsp=False,
        )
        sets = build_chain_sets(
            [int1.certificate, int2.certificate, leaf_a, orphan],
            [root.certificate],
        )
        assert orphan in sets.rejected
        assert leaf_a in sets.leaf_set

    def test_expired_cert_still_admitted(self):
        """§3.1: the pipeline ignores date errors."""
        root, int1, int2, leaf_a, _ = self._hierarchy()
        expired = int1.issue_leaf(
            "old.example",
            KeyPair.generate("cs-old").public_key,
            datetime.datetime(2010, 1, 1, tzinfo=self.UTC),
            datetime.datetime(2011, 1, 1, tzinfo=self.UTC),
            include_crl=False,
            include_ocsp=False,
        )
        sets = build_chain_sets([int1.certificate, expired], [root.certificate])
        assert expired in sets.leaf_set

    def test_ecosystem_sample(self, ecosystem):
        """The §3.1 algorithm over materialised ecosystem certificates."""
        sample = [ecosystem.materialize(l) for l in ecosystem.leaves[::2000]]
        intermediates = [
            ca.certificate
            for state in ecosystem.brands.values()
            for ca in state.intermediate_cas
        ]
        sets = build_chain_sets(sample + intermediates, ecosystem.roots)
        assert sets.leaf_count == len(sample)
        assert sets.intermediate_count == len(intermediates)
