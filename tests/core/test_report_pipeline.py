"""Report rendering and MeasurementStudy facade tests."""

from __future__ import annotations

import datetime

import pytest

from repro.core.report import format_bytes, format_table, render_cdf, render_series
from repro.core.stats import Cdf


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 22), (333, 4)], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_series_bars_scale(self):
        text = render_series([("x", 1.0), ("y", 0.5)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_render_series_empty(self):
        assert "(empty series)" in render_series([], title="t")

    def test_render_cdf(self):
        text = render_cdf(Cdf.from_values(range(100)), title="cdf")
        assert "p50" in text and "p95" in text

    def test_format_bytes(self):
        assert format_bytes(500) == "500 B"
        assert format_bytes(51 * 1024) == "51.0 KB"
        assert format_bytes(76 * 1024 * 1024) == "76.0 MB"


class TestMeasurementStudy:
    def test_components_cached(self, study):
        assert study.ecosystem is study.ecosystem
        assert study.crlset_history is study.crlset_history

    def test_dataset_summary_keys(self, study):
        summary = study.dataset_summary()
        for key in (
            "leaf_set_size",
            "alive_in_last_scan_fraction",
            "leaf_with_crl",
            "unique_crls",
            "unique_ocsp_responders",
        ):
            assert key in summary

    def test_alive_fraction_band(self, study):
        summary = study.dataset_summary()
        # Paper: 45.2% of Leaf Set certs alive in the latest scan.
        assert 0.30 <= summary["alive_in_last_scan_fraction"] <= 0.65

    def test_revocation_series_window(self, study):
        series = study.revocation_series(
            start=datetime.date(2014, 2, 1), end=datetime.date(2014, 4, 1)
        )
        assert series.dates[0] == datetime.date(2014, 2, 1)
        assert series.dates[-1] <= datetime.date(2014, 4, 1)

    def test_revocation_info_by_issue_month(self, study):
        series = study.revocation_info_by_issue_month()
        months = sorted(series)
        assert months[0] >= datetime.date(2011, 1, 1)
        for month in months:
            assert 0.0 <= series[month]["crl"] <= 1.0
            assert 0.0 <= series[month]["ocsp"] <= 1.0

    def test_crl_sizes_and_counts_align(self, study):
        sizes = study.crl_sizes()
        counts = study.crl_entry_counts()
        assert set(sizes) == set(counts)
