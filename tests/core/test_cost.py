"""Session cost model tests (§5.2 client-side trade-offs)."""

from __future__ import annotations

import pytest

from repro.core.cost import OCSP_RESPONSE_BYTES, SessionCostModel
from repro.net.transport import LinkProfile


@pytest.fixture(scope="module")
def model(ecosystem):
    return SessionCostModel(ecosystem)


@pytest.fixture(scope="module")
def comparison(model):
    return model.compare_modes(site_count=150)


class TestSessionCost:
    def test_mode_ordering(self, comparison):
        """The paper's §5.2 ranking: CRL >> OCSP > stapling > none."""
        assert comparison["crl"].bytes_downloaded > 10 * comparison[
            "ocsp"
        ].bytes_downloaded
        assert (
            comparison["ocsp"].bytes_downloaded
            >= comparison["staple"].bytes_downloaded
        )
        assert comparison["none"].bytes_downloaded == 0

    def test_none_mode_is_free(self, comparison):
        none = comparison["none"]
        assert none.checks == 0
        assert none.blocking_latency_s == pytest.approx(0.0)

    def test_ocsp_bytes_accounting(self, comparison):
        ocsp = comparison["ocsp"]
        assert ocsp.bytes_downloaded == ocsp.checks * OCSP_RESPONSE_BYTES

    def test_caching_helps_repeat_visits(self, model):
        sites = model.sample_sites(40)
        doubled = sites + sites
        cost = model.session(doubled, "ocsp")
        assert cost.cache_hits >= len(sites)

    def test_per_site_metrics(self, comparison):
        crl = comparison["crl"]
        assert crl.bytes_per_site > 0
        assert crl.latency_per_site_ms > 0

    def test_unknown_mode_rejected(self, model):
        with pytest.raises(ValueError):
            model.session([], "pigeon")

    def test_mobile_profile_latency_higher(self, ecosystem):
        broadband = SessionCostModel(ecosystem, LinkProfile(), seed=9)
        mobile = SessionCostModel(ecosystem, LinkProfile.mobile(), seed=9)
        sites_b = broadband.sample_sites(60)
        sites_m = mobile.sample_sites(60)
        cost_b = broadband.session(sites_b, "ocsp")
        cost_m = mobile.session(sites_m, "ocsp")
        assert cost_m.latency_per_site_ms > 2 * cost_b.latency_per_site_ms
