"""Figure 1 lifecycle classification tests."""

from __future__ import annotations

import datetime

from repro.core.lifecycle import (
    LifecycleShape,
    classify,
    lifecycle_census,
    render_lifecycle,
)
from repro.scan.records import LeafRecord

D = datetime.date


def leaf(nb, na, birth, death, revoked=None) -> LeafRecord:
    return LeafRecord(
        cert_id=0,
        brand="X",
        intermediate_id=0,
        serial_number=1,
        not_before=nb,
        not_after=na,
        birth=birth,
        death=death,
        is_ev=False,
        crl_url=None,
        ocsp_url=None,
        revoked_at=revoked,
    )


class TestClassify:
    def test_typical(self):
        record = leaf(D(2014, 1, 1), D(2015, 1, 1), D(2014, 1, 5), D(2014, 12, 1))
        assert classify(record, D(2014, 6, 1)) is LifecycleShape.TYPICAL

    def test_revoked_retired(self):
        record = leaf(
            D(2014, 1, 1), D(2015, 1, 1), D(2014, 1, 5), D(2014, 5, 1),
            revoked=D(2014, 5, 1),
        )
        assert classify(record, D(2014, 8, 1)) is LifecycleShape.REVOKED_RETIRED

    def test_revoked_still_advertised(self):
        record = leaf(
            D(2014, 1, 1), D(2015, 1, 1), D(2014, 1, 5), D(2014, 12, 20),
            revoked=D(2014, 5, 1),
        )
        assert (
            classify(record, D(2014, 8, 1))
            is LifecycleShape.REVOKED_STILL_ADVERTISED
        )

    def test_expired_still_advertised(self):
        record = leaf(D(2014, 1, 1), D(2014, 6, 1), D(2014, 1, 5), D(2014, 8, 1))
        assert (
            classify(record, D(2014, 7, 1))
            is LifecycleShape.EXPIRED_STILL_ADVERTISED
        )

    def test_atypical_gamespace_case(self):
        # The paper's gamespace.adobe.com: revoked AND expired AND alive.
        record = leaf(
            D(2014, 1, 1), D(2014, 6, 1), D(2014, 1, 5), D(2014, 9, 1),
            revoked=D(2014, 4, 1),
        )
        assert classify(record, D(2014, 7, 1)) is LifecycleShape.ATYPICAL


class TestCensus:
    def test_census_over_ecosystem(self, ecosystem, measurement_end):
        census = lifecycle_census(ecosystem, measurement_end)
        assert sum(census.values()) == len(ecosystem.leaves)
        # Typical certificates dominate; the anomalies exist but are rare.
        assert census[LifecycleShape.TYPICAL] > sum(
            count
            for shape, count in census.items()
            if shape is not LifecycleShape.TYPICAL
        ) * 0.5
        assert census[LifecycleShape.REVOKED_STILL_ADVERTISED] > 0


class TestRender:
    def test_render_contains_all_timelines(self):
        record = leaf(
            D(2014, 1, 1), D(2015, 1, 1), D(2014, 1, 5), D(2014, 12, 1),
            revoked=D(2014, 5, 1),
        )
        text = render_lifecycle(record)
        assert "fresh" in text and "alive" in text and "revoked" in text
        assert "=" in text and "#" in text and "R" in text

    def test_render_without_revocation(self):
        record = leaf(D(2014, 1, 1), D(2015, 1, 1), D(2014, 1, 5), D(2014, 12, 1))
        text = render_lifecycle(record)
        assert "revoked" not in text
