"""Bloom filter tests: correctness invariants and the §7.4 analytics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crlset.bloom import (
    BloomFilter,
    capacity_at_fp_rate,
    false_positive_rate,
    optimal_k,
)


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(m_bits=4, k=1)
        with pytest.raises(ValueError):
            BloomFilter(m_bits=1024, k=0)

    def test_size_bytes(self):
        assert BloomFilter(m_bits=8192, k=3).size_bytes == 1024

    def test_for_items_uses_optimal_k(self):
        bloom = BloomFilter.for_items(1000, 16384)
        assert bloom.k == optimal_k(16384, 1000)


class TestMembership:
    def test_no_false_negatives_small(self):
        bloom = BloomFilter(m_bits=1 << 16, k=5)
        items = [f"serial-{i}".encode() for i in range(2000)]
        bloom.update(items)
        assert all(item in bloom for item in items)

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(m_bits=1 << 12, k=4)
        assert b"anything" not in bloom

    def test_fp_rate_in_expected_range(self):
        n = 5000
        bloom = BloomFilter.for_items(n, 1 << 16)
        bloom.update(f"in-{i}".encode() for i in range(n))
        measured = bloom.measured_fp_rate(f"out-{i}".encode() for i in range(20000))
        analytic = bloom.expected_fp_rate()
        assert measured < 4 * analytic + 0.01

    def test_fill_ratio_grows(self):
        bloom = BloomFilter(m_bits=1 << 12, k=3)
        assert bloom.fill_ratio == pytest.approx(0.0)
        bloom.update(f"{i}".encode() for i in range(100))
        assert 0.0 < bloom.fill_ratio < 1.0

    @given(st.sets(st.binary(min_size=1, max_size=16), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_no_false_negatives_property(self, items):
        """The §7.4 guarantee: a revoked cert is always flagged."""
        bloom = BloomFilter.for_items(len(items), 1 << 14)
        bloom.update(items)
        assert all(item in bloom for item in items)


class TestAnalytics:
    def test_optimal_k_formula(self):
        import math

        assert optimal_k(10_000, 1_000) == math.ceil(10 * math.log(2))
        assert optimal_k(10, 10_000) == 1  # floor at 1

    def test_fp_rate_monotone_in_n(self):
        m = 256 * 1024 * 8
        rates = [false_positive_rate(m, n) for n in (10_000, 100_000, 1_000_000)]
        assert rates[0] < rates[1] < rates[2]

    def test_fp_rate_edge_cases(self):
        assert false_positive_rate(1024, 0) == pytest.approx(0.0)
        assert false_positive_rate(0, 10) == pytest.approx(1.0)

    def test_capacity_inverse_of_fp_rate(self):
        m = 2 * 1024 * 1024 * 8
        n = capacity_at_fp_rate(m, 0.01)
        assert false_positive_rate(m, n) <= 0.0105

    def test_paper_headline_numbers(self):
        """§7.4: 2 MB at 1% FP covers ~1.7 M revocations; 256 KB covers
        an order of magnitude more than the ~25 k-entry CRLSet."""
        assert 1_500_000 <= capacity_at_fp_rate(2 * 1024 * 1024 * 8, 0.01) <= 2_000_000
        assert capacity_at_fp_rate(256 * 1024 * 8, 0.01) > 200_000

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            capacity_at_fp_rate(1024, 1.5)
