"""Golomb Compressed Set tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crlset.bloom import BloomFilter
from repro.crlset.gcs import GolombCompressedSet


class TestGcs:
    def test_no_false_negatives(self):
        items = [f"serial-{i}".encode() for i in range(3000)]
        gcs = GolombCompressedSet(items, fp_rate=0.01)
        assert all(item in gcs for item in items)

    def test_fp_rate_reasonable(self):
        items = [f"in-{i}".encode() for i in range(3000)]
        gcs = GolombCompressedSet(items, fp_rate=0.01)
        probes = [f"out-{i}".encode() for i in range(20000)]
        hits = sum(1 for p in probes if p in gcs)
        assert hits / len(probes) < 0.04

    def test_empty_set(self):
        gcs = GolombCompressedSet([], fp_rate=0.01)
        assert b"x" not in gcs
        assert gcs.n == 0

    def test_fp_rate_validation(self):
        with pytest.raises(ValueError):
            GolombCompressedSet([b"a"], fp_rate=0.0)

    def test_smaller_than_bloom(self):
        """Langley's point [25]: GCS beats Bloom filters on space at the
        same false-positive rate."""
        items = [f"serial-{i}".encode() for i in range(5000)]
        gcs = GolombCompressedSet(items, fp_rate=0.01)
        # Bloom at 1% FP needs ~9.6 bits/item; GCS ~ log2(100)+1.5 ~ 8.1.
        bloom_bits = 5000 * 9.6
        assert gcs.size_bytes * 8 < bloom_bits

    def test_bits_per_item(self):
        items = [f"serial-{i}".encode() for i in range(2000)]
        gcs = GolombCompressedSet(items, fp_rate=0.01)
        assert 6.0 <= gcs.bits_per_item() <= 10.0

    @given(st.sets(st.binary(min_size=1, max_size=12), min_size=1, max_size=150))
    @settings(max_examples=25, deadline=None)
    def test_no_false_negatives_property(self, items):
        gcs = GolombCompressedSet(items, fp_rate=0.05)
        assert all(item in gcs for item in items)
