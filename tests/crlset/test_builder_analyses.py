"""CRLSet builder, coverage, and dynamics tests over the shared ecosystem."""

from __future__ import annotations

import datetime

import pytest

from repro.crlset.builder import CrlSetBuilder
from repro.crlset.coverage import analyze_coverage
from repro.crlset.dynamics import analyze_dynamics


@pytest.fixture(scope="module")
def history(crlset_history):
    return crlset_history


@pytest.fixture(scope="module")
def coverage(ecosystem, history):
    return analyze_coverage(ecosystem, history)


@pytest.fixture(scope="module")
def dynamics(ecosystem, history):
    return analyze_dynamics(ecosystem, history)


class TestBuilderRules:
    def test_cap_respected(self, history, ecosystem):
        assert (
            history.final_snapshot.size_bytes
            <= ecosystem.calibration.crlset_size_cap_bytes
        )

    def test_only_covered_crls_contribute(self, history, ecosystem):
        covered_brands = {
            profile.name for profile in ecosystem.profiles if profile.crlset_covered
        }
        for h in history.entry_histories:
            crl = ecosystem.crl_for_url(h.crl_url)
            assert crl.brand in covered_brands

    def test_oversized_crls_dropped(self, history, ecosystem):
        # GoDaddy's huge shards are crawled but never admitted (rule 3).
        godaddy_urls = {c.url for c in ecosystem.crls if c.brand == "GoDaddy"}
        appeared_urls = {
            h.crl_url for h in history.entry_histories if h.first_appeared
        }
        assert not godaddy_urls & appeared_urls

    def test_ineligible_reasons_never_appear(self, history):
        for h in history.entry_histories:
            if not h.eligible:
                assert h.first_appeared is None

    def test_gap_freezes_membership(self, history, ecosystem):
        cal = ecosystem.calibration
        day = cal.crlset_gap_start
        while day < cal.crlset_gap_end:
            assert history.daily_additions.get(day, 0) == 0
            assert history.daily_removals.get(day, 0) == 0
            day += datetime.timedelta(days=1)

    def test_parent_removal_event(self, history, ecosystem):
        cal = ecosystem.calibration
        removal = cal.crlset_parent_removal_date
        before = history.daily_entry_counts[removal - datetime.timedelta(days=2)]
        after = history.daily_entry_counts[removal + datetime.timedelta(days=2)]
        assert after < before * 0.92

    def test_removed_brand_absent_at_end(self, history, ecosystem):
        ev_parents = {
            crl.issuer_key_hash
            for crl in ecosystem.crls
            if crl.brand == "VerisignEV"
        }
        assert not ev_parents & set(history.final_snapshot.parents)

    def test_determinism(self, ecosystem):
        a = CrlSetBuilder(ecosystem).run()
        b = CrlSetBuilder(ecosystem).run()
        assert a.daily_entry_counts == b.daily_entry_counts
        assert a.final_snapshot.parents == b.final_snapshot.parents

    def test_incremental_sweep_equals_full_rebuild(self, history, ecosystem):
        full = CrlSetBuilder(ecosystem).run(incremental=False)
        assert full.daily_entry_counts == history.daily_entry_counts
        assert full.daily_additions == history.daily_additions
        assert full.daily_removals == history.daily_removals
        assert full.covered_urls == history.covered_urls
        assert full.dropped_urls == history.dropped_urls
        assert full.parents_ever == history.parents_ever
        assert full.final_snapshot.parents == history.final_snapshot.parents
        key = lambda h: (h.crl_url, h.serial)
        assert {
            key(h): (h.first_appeared, h.removed_at) for h in full.entry_histories
        } == {
            key(h): (h.first_appeared, h.removed_at) for h in history.entry_histories
        }


class TestCoverage:
    def test_tiny_overall_coverage(self, coverage):
        # Paper: 0.35% of all revocations ever appear in CRLSets.
        assert coverage.coverage_fraction < 0.02

    def test_covered_crl_minority(self, coverage):
        assert 0 < coverage.covered_crl_count < coverage.total_crl_count * 0.45

    def test_most_covered_crls_fully_covered(self, coverage):
        # Paper: 75.6% of covered CRLs have all eligible entries present.
        assert coverage.fully_covered_fraction >= 0.5

    def test_eligible_coverage_dominates_all_coverage(self, coverage):
        import statistics

        assert statistics.median(
            coverage.per_crl_coverage_eligible
        ) >= statistics.median(coverage.per_crl_coverage_all)

    def test_alexa_mostly_uncovered(self, coverage):
        assert coverage.alexa_1m_revocations > 0
        assert coverage.alexa_1m_fraction < 0.3

    def test_parent_counts(self, coverage, history):
        assert coverage.parents_in_crlset == len(history.parents_ever)
        assert coverage.parents_in_crlset < coverage.total_ca_certs


class TestDynamics:
    def test_entry_band(self, dynamics):
        assert 2_000 <= dynamics.min_entries <= dynamics.max_entries <= 60_000

    def test_peak_in_heartbleed_window(self, dynamics):
        peak_day = max(dynamics.entry_count_series, key=dynamics.entry_count_series.get)
        assert datetime.date(2014, 3, 15) <= peak_day <= datetime.date(2014, 6, 15)

    def test_appearance_lag_cdf(self, dynamics):
        assert 0.4 <= dynamics.appear_within(1) <= 0.9
        assert dynamics.appear_within(2) >= 0.8
        assert dynamics.appear_within(10) >= dynamics.appear_within(2)

    def test_removal_long_before_expiry(self, dynamics):
        assert dynamics.removal_before_expiry_days  # the Fig 10 population
        assert dynamics.median_removal_before_expiry > 60

    def test_weekly_pattern(self, dynamics):
        assert dynamics.weekly_pattern_ratio() > 1.5

    def test_crl_additions_dwarf_crlset_additions(self, dynamics):
        crl_mean = sum(dynamics.crl_daily_additions.values()) / len(
            dynamics.crl_daily_additions
        )
        crlset_mean = sum(dynamics.crlset_daily_additions.values()) / max(
            1, len(dynamics.crlset_daily_additions)
        )
        assert crl_mean > 5 * max(crlset_mean, 0.1)
