"""CRLSet serialization tests."""

from __future__ import annotations

import datetime
import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crlset.format import CrlSetSnapshot, serial_to_bytes, serialized_size


def parent(i: int) -> bytes:
    return hashlib.sha256(f"parent-{i}".encode()).digest()


def make_snapshot(parents=None, blocked=frozenset()):
    parents = parents or {
        parent(1): frozenset({1, 2, 3}),
        parent(2): frozenset({2**64, 5}),
    }
    return CrlSetSnapshot(
        sequence=42,
        date=datetime.date(2015, 3, 31),
        parents=parents,
        blocked_spkis=blocked,
    )


class TestSerials:
    def test_minimal_encoding(self):
        assert serial_to_bytes(0) == b"\x00"
        assert serial_to_bytes(255) == b"\xff"
        # CRLSet serials are big-endian ints, not DER tag bytes.
        assert serial_to_bytes(256) == b"\x01\x00"  # repro: noqa RPR006

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            serial_to_bytes(-1)


class TestSnapshot:
    def test_queries(self):
        snapshot = make_snapshot()
        assert snapshot.covers(parent(1))
        assert not snapshot.covers(parent(9))
        assert snapshot.is_revoked(parent(1), 2)
        assert not snapshot.is_revoked(parent(1), 99)
        assert not snapshot.is_revoked(parent(9), 2)
        assert snapshot.entry_count == 5
        assert snapshot.parent_count == 2

    def test_entries_set(self):
        snapshot = make_snapshot()
        assert (parent(1), 3) in snapshot.entries()
        assert len(snapshot.entries()) == 5

    def test_blocked_spkis(self):
        spki = hashlib.sha256(b"blocked").digest()
        snapshot = make_snapshot(blocked=frozenset({spki}))
        assert snapshot.is_blocked_spki(spki)
        assert not snapshot.is_blocked_spki(parent(1))

    def test_roundtrip(self):
        spki = hashlib.sha256(b"blocked").digest()
        snapshot = make_snapshot(blocked=frozenset({spki}))
        parsed = CrlSetSnapshot.from_bytes(snapshot.to_bytes())
        assert parsed.sequence == snapshot.sequence
        assert parsed.date == snapshot.date
        assert parsed.parents == snapshot.parents
        assert parsed.blocked_spkis == snapshot.blocked_spkis

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            CrlSetSnapshot.from_bytes(b"XXXX" + b"\x00" * 16)

    def test_trailing_bytes_rejected(self):
        blob = make_snapshot().to_bytes() + b"\x00"
        with pytest.raises(ValueError):
            CrlSetSnapshot.from_bytes(blob)

    def test_size_accounting_matches_wire(self):
        snapshot = make_snapshot()
        computed = serialized_size(
            {p: set(s) for p, s in snapshot.parents.items()}
        )
        assert computed == len(snapshot.to_bytes())

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=50),
            st.sets(st.integers(min_value=0, max_value=2**80), min_size=1, max_size=20),
            max_size=8,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, raw):
        parents = {parent(i): frozenset(serials) for i, serials in raw.items()}
        snapshot = CrlSetSnapshot(
            sequence=1, date=datetime.date(2014, 1, 1), parents=parents
        )
        parsed = CrlSetSnapshot.from_bytes(snapshot.to_bytes())
        assert parsed.parents == parents
