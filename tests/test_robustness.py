"""Cross-seed robustness and determinism guarantees.

The calibration bands must hold for *any* seed (the defaults didn't just
get lucky), and identical configurations must produce identical results
(the reproduction is a function, not a sample).
"""

from __future__ import annotations

import datetime

import pytest

from repro import MeasurementStudy
from repro.scan.calibration import Calibration
from repro.scan.ecosystem import Ecosystem


@pytest.fixture(scope="module", params=[7, 424242])
def seed(request):
    return request.param


@pytest.fixture(scope="module")
def eco(seed):
    return Ecosystem(Calibration(scale=0.001, seed=seed))


class TestSeedRobustness:
    def test_revocation_bands_hold(self, eco, seed):
        end = eco.calibration.measurement_end
        fresh = eco.fresh_leaves(end)
        fraction = sum(1 for l in fresh if l.is_revoked_by(end)) / len(fresh)
        assert 0.04 <= fraction <= 0.14, seed

    def test_heartbleed_spike_holds(self, eco, seed):
        before = datetime.date(2014, 3, 1)
        after = datetime.date(2014, 5, 15)
        fb = eco.fresh_leaves(before)
        fa = eco.fresh_leaves(after)
        rb = sum(1 for l in fb if l.is_revoked_by(before)) / len(fb)
        ra = sum(1 for l in fa if l.is_revoked_by(after)) / len(fa)
        assert ra > 3 * rb, seed

    def test_pointer_bands_hold(self, eco, seed):
        ocsp = sum(1 for l in eco.leaves if l.has_ocsp) / len(eco.leaves)
        crl = sum(1 for l in eco.leaves if l.has_crl) / len(eco.leaves)
        assert crl > 0.98 and 0.88 <= ocsp <= 0.99, seed


class TestDeterminism:
    def test_identical_studies_identical_series(self):
        a = MeasurementStudy(scale=0.0005, seed=123)
        b = MeasurementStudy(scale=0.0005, seed=123)
        series_a = a.revocation_series()
        series_b = b.revocation_series()
        assert series_a.fresh_revoked_all == series_b.fresh_revoked_all
        assert series_a.alive_revoked_ev == series_b.alive_revoked_ev

    def test_crlset_history_internally_consistent(self, study, crlset_history):
        end = study.calibration.measurement_end
        assert (
            crlset_history.final_snapshot.entry_count
            == crlset_history.daily_entry_counts[end]
        )
        # Net additions minus removals over the sweep must equal the final
        # count (membership starts empty).
        net = sum(crlset_history.daily_additions.values()) - sum(
            crlset_history.daily_removals.values()
        )
        assert net == crlset_history.final_snapshot.entry_count
