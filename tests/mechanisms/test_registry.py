"""Registry semantics: registration, lookup, suite construction, and
the glue surfaces (api facade, browser-protocol mapping)."""

from __future__ import annotations

import pytest

from repro import api
from repro.browsers.policy import (
    PROTOCOL_MECHANISMS,
    CheckRecord,
    Position,
    ValidationResult,
    mechanism_for_protocol,
)
from repro.core.pipeline import MeasurementStudy
from repro.mechanisms import (
    RevocationMechanism,
    create_suite,
    get,
    mechanism_names,
    mechanism_titles,
    register,
)
from repro.revocation.checker import CheckOutcome

#: the full scenario pack, in registration (sweep) order: the paper's
#: four legacy mechanisms, then the post-2015 pack.
EXPECTED_ORDER = (
    "crl",
    "ocsp",
    "ocsp-stapling",
    "crlset",
    "crlite-cascade",
    "short-lived",
    "onecrl",
    "postcertificate",
)


def test_registry_order_is_the_sweep_order():
    assert mechanism_names() == EXPECTED_ORDER


def test_registry_meets_the_scenario_pack_bar():
    assert len(mechanism_names()) >= 7


def test_duplicate_name_registration_is_rejected():
    class Impostor(RevocationMechanism):
        name = "crl"  # already taken by CrlMechanism

        def covers(self, leaf):  # pragma: no cover - never called
            return False

        def lookup(self, leaf, at):  # pragma: no cover
            return CheckOutcome.NO_INFO

        def update_model(self):  # pragma: no cover
            raise NotImplementedError

        def check_cost(self, leaf, session):  # pragma: no cover
            raise NotImplementedError

        def payload_bytes(self, at):  # pragma: no cover
            raise NotImplementedError

    with pytest.raises(ValueError, match="already registered"):
        register(Impostor)
    # The legitimate registrant is untouched.
    assert get("crl").__name__ == "CrlMechanism"


def test_reregistering_the_same_class_is_idempotent():
    cls = get("ocsp")
    assert register(cls) is cls
    assert mechanism_names().count("ocsp") == 1


def test_abstract_name_is_rejected():
    class Nameless(RevocationMechanism):
        pass

    with pytest.raises(ValueError, match="concrete name"):
        register(Nameless)


def test_get_unknown_mechanism_raises_with_known_names():
    with pytest.raises(KeyError, match="crlite-cascade"):
        get("carrier-pigeon")


def test_create_suite_defaults_to_registry_order(study):
    assert tuple(m.name for m in study.mechanism_suite) == EXPECTED_ORDER


def test_create_suite_restricts_and_reorders(study):
    suite = create_suite(study, names=("onecrl", "crl"))
    assert [m.name for m in suite] == ["onecrl", "crl"]


def test_study_mechanisms_argument_restricts_the_sweep(study):
    restricted = MeasurementStudy(
        calibration=study.calibration, mechanisms=("short-lived",)
    )
    assert [m.name for m in restricted.mechanism_suite] == ["short-lived"]


def test_api_list_mechanisms_matches_the_registry():
    assert api.study.list_mechanisms() == mechanism_titles()
    assert tuple(api.study.list_mechanisms()) == mechanism_names()


def test_run_one_rejects_unknown_mechanism():
    with pytest.raises(KeyError):
        api.study.run_one("fig10", mechanism="carrier-pigeon", scale=0.0005)


def test_protocol_mechanisms_are_all_registered():
    for name in PROTOCOL_MECHANISMS.values():
        assert issubclass(get(name), RevocationMechanism)
    assert mechanism_for_protocol("staple") == "ocsp-stapling"
    with pytest.raises(KeyError, match="ocsp"):
        mechanism_for_protocol("smoke-signal")


def test_validation_result_maps_checks_onto_registry_names():
    result = ValidationResult()
    result.checks = [
        CheckRecord(Position.LEAF, "staple", CheckOutcome.GOOD),
        CheckRecord(Position.LEAF, "ocsp", CheckOutcome.GOOD),
        CheckRecord(Position.INT1, "ocsp", CheckOutcome.GOOD),
        CheckRecord(Position.INT1, "crl", CheckOutcome.GOOD),
    ]
    assert result.mechanisms_used() == ("ocsp-stapling", "ocsp", "crl")
