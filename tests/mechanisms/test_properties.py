"""Seeded property tests over the mechanism contract (hypothesis).

The derandomized "repro" profile from ``tests/conftest.py`` applies:
example streams are derived from the test function, so two runs execute
identical examples.  Two families, per the contract in
``repro/mechanisms/base.py``:

* **lookup vs ground truth**: once the mechanism's staleness window has
  fully elapsed after a revocation, a covered certificate is never
  vouched for (and an uncovered one is honestly ``NO_INFO``); a clean
  chain is never flagged.
* **window semantics**: vulnerability windows are non-negative, clamped
  to the certificate's residual life, and monotone non-decreasing in
  the update interval (more frequent updates never hurt).
"""

from __future__ import annotations

import datetime
import math

import pytest
from hypothesis import given, strategies as st

from repro.mechanisms import mechanism_names
from repro.revocation.checker import CheckOutcome

MECHANISMS = mechanism_names()


@pytest.fixture(scope="module")
def suite(study):
    return {mechanism.name: mechanism for mechanism in study.mechanism_suite}


@pytest.fixture(scope="module")
def revoked_leaves(ecosystem, measurement_end):
    return [
        leaf
        for leaf in ecosystem.leaves
        if leaf.revoked_at is not None and leaf.revoked_at <= measurement_end
    ]


@pytest.fixture(scope="module")
def clean_chain_leaves(ecosystem):
    revoked_intermediates = {
        record.intermediate_id
        for record in ecosystem.intermediates
        if record.revoked_at is not None
    }
    return [
        leaf
        for leaf in ecosystem.leaves
        if leaf.revoked_at is None
        and leaf.intermediate_id not in revoked_intermediates
    ]


@pytest.mark.parametrize("name", MECHANISMS)
@given(index=st.integers(min_value=0, max_value=10**6),
       extra_days=st.integers(min_value=0, max_value=400))
def test_lookup_agrees_with_ground_truth_after_propagation(
    suite, revoked_leaves, name, index, extra_days
):
    mechanism = suite[name]
    leaf = revoked_leaves[index % len(revoked_leaves)]
    staleness = math.ceil(mechanism.update_model().staleness_window_days)
    at = leaf.revoked_at + datetime.timedelta(days=staleness + extra_days)
    outcome = mechanism.lookup(leaf, at)
    if mechanism.covers(leaf):
        assert outcome is not CheckOutcome.GOOD
    else:
        assert outcome is CheckOutcome.NO_INFO


@pytest.mark.parametrize("name", MECHANISMS)
@given(index=st.integers(min_value=0, max_value=10**6),
       day_offset=st.integers(min_value=0, max_value=1200))
def test_lookup_never_flags_a_clean_chain(
    suite, clean_chain_leaves, name, index, day_offset
):
    mechanism = suite[name]
    leaf = clean_chain_leaves[index % len(clean_chain_leaves)]
    at = leaf.not_before + datetime.timedelta(days=day_offset)
    assert mechanism.lookup(leaf, at) is not CheckOutcome.REVOKED


@pytest.mark.parametrize("name", MECHANISMS)
@given(
    index=st.integers(min_value=0, max_value=10**6),
    shorter=st.floats(min_value=0.0, max_value=60.0,
                      allow_nan=False, allow_infinity=False),
    stretch=st.floats(min_value=0.0, max_value=60.0,
                      allow_nan=False, allow_infinity=False),
)
def test_window_nonnegative_and_monotone_in_update_interval(
    suite, revoked_leaves, name, index, shorter, stretch
):
    """More frequent updates (a smaller interval) never widen the
    window; every window stays within [0, residual life]."""
    mechanism = suite[name]
    leaf = revoked_leaves[index % len(revoked_leaves)]
    longer = shorter + stretch
    narrow = mechanism.vulnerability_window_days(
        leaf, update_interval_days=shorter
    )
    wide = mechanism.vulnerability_window_days(
        leaf, update_interval_days=longer
    )
    residual = max(0.0, float((leaf.not_after - leaf.revoked_at).days))
    assert 0.0 <= narrow <= wide <= residual
