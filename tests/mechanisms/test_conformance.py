"""Run the conformance harness over every registered mechanism.

Parametrized by registry name, so CI's mechanism matrix can select one
mechanism (``pytest -k "[crl]"``) and every new registration is covered
automatically.  The fault-profile leg honors ``REPRO_FAULT_PROFILE``
(the CI fault matrix) on top of the always-run none/flaky pair.
"""

from __future__ import annotations

import os

import pytest

from repro import api
from repro.core.pipeline import MeasurementStudy
from repro.experiments.mechanisms import mechanism_blocks
from repro.mechanisms import mechanism_names

from tests.mechanisms import conformance

MECHANISMS = mechanism_names()

#: fault profiles every mechanism must stay honest under; the CI matrix
#: adds its own via REPRO_FAULT_PROFILE.
FAULT_PROFILES = tuple(
    dict.fromkeys(
        ["none", "flaky", os.environ.get("REPRO_FAULT_PROFILE", "none")]
    )
)


@pytest.fixture(scope="module")
def suite(study):
    return {mechanism.name: mechanism for mechanism in study.mechanism_suite}


@pytest.fixture(scope="module")
def twin_suite(study):
    """A second, independently built study at the same calibration."""
    twin = MeasurementStudy(
        scale=study.calibration.scale, seed=study.calibration.seed
    )
    return {mechanism.name: mechanism for mechanism in twin.mechanism_suite}


@pytest.fixture(scope="module")
def full_blocks(study):
    return mechanism_blocks(study)


@pytest.mark.parametrize("name", MECHANISMS)
def test_metadata(suite, name):
    conformance.check_metadata(suite[name])


@pytest.mark.parametrize("name", MECHANISMS)
def test_deterministic_across_builds(suite, twin_suite, measurement_end, name):
    conformance.check_determinism(suite[name], twin_suite[name], measurement_end)


@pytest.mark.parametrize("name", MECHANISMS)
def test_lookup_soundness(suite, measurement_end, name):
    conformance.check_soundness(suite[name], measurement_end)


@pytest.mark.parametrize("name", MECHANISMS)
def test_window_semantics(suite, measurement_end, name):
    conformance.check_window_semantics(suite[name], measurement_end)


@pytest.mark.parametrize("name", MECHANISMS)
def test_cost_accounting(suite, name):
    conformance.check_cost_accounting(suite[name])


@pytest.mark.parametrize("profile", FAULT_PROFILES)
@pytest.mark.parametrize("name", MECHANISMS)
def test_honest_costs_under_faults(suite, name, profile):
    conformance.check_active_faults(suite[name], profile)


@pytest.mark.parametrize("name", MECHANISMS)
def test_report_byte_parity(study, full_blocks, name):
    restricted = MeasurementStudy(
        calibration=study.calibration, mechanisms=(name,)
    )
    # Share the already-built substrate: parity is about the sweep, not
    # about rebuilding identical corpora (test_deterministic covers that).
    restricted.__dict__["ecosystem"] = study.ecosystem
    restricted.__dict__["crlset_history"] = study.crlset_history
    conformance.check_report_parity(name, full_blocks, restricted)


def test_registry_exposes_the_full_pack(suite):
    """The acceptance bar: at least the paper's four plus the modern
    scenario pack, all conformant (the tests above) and all visible
    through the api facade."""
    assert len(MECHANISMS) >= 7
    assert set(api.study.list_mechanisms()) == set(MECHANISMS)
