"""Before/after equivalence for the staleness-math hoist.

``repro.extensions.shortlived`` (and the OneCRL scope override) used to
carry private copies of the staleness/residual/clamp arithmetic; the
shared helpers now live in ``repro.mechanisms.base``.  The digest below
was computed from the *pre-hoist* implementation (elementwise equality
old-vs-new was verified over all 844 revoked samples in all three
regimes at the pinned calibration; values were ints where non-negative,
so the digest normalises everything to float) -- the hoisted code must
keep reproducing it bit-for-bit.
"""

from __future__ import annotations

import datetime
import hashlib
import json

import pytest

from repro.extensions.shortlived import RevocationRegime, attack_window_study
from repro.mechanisms.base import (
    attack_window_days,
    residual_life_days,
    staleness_window_days,
)

#: sha256 over {regime.name: [float(window), ...]} (sort_keys json) of
#: attack_window_study's defaults at scale 0.002 / seed 20151028 --
#: pinned from the pre-hoist implementation.
PRE_HOIST_DIGEST = (
    "3120588bcbb5ecdf07afdf2e0fc74eb29ceaffcc82d71f5474ecb2ed9d35d312"
)

#: attack_window_study defaults the digest was pinned against.
ADMIN_REACTION_DAYS = 3.0
PROPAGATION_DAYS = 4.0


@pytest.fixture(scope="module")
def report(ecosystem):
    return attack_window_study(ecosystem)


def test_hoisted_math_matches_the_pre_hoist_digest(report):
    payload = {
        regime.name: [float(window) for window in report.windows[regime]]
        for regime in RevocationRegime
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    assert digest == PRE_HOIST_DIGEST, (
        "attack_window_study's output changed across the staleness-math "
        "hoist; the refactor was supposed to be behaviour-preserving"
    )


def test_regime_windows_keep_their_structure(report):
    """The invariants the old inline arithmetic guaranteed, elementwise."""
    soft = report.windows[RevocationRegime.SOFT_FAIL]
    hard = report.windows[RevocationRegime.HARD_FAIL]
    short = report.windows[RevocationRegime.SHORT_LIVED]
    assert len(soft) == len(hard) == len(short) > 0
    exposure = ADMIN_REACTION_DAYS + PROPAGATION_DAYS
    for s, h, sl in zip(soft, hard, short):
        assert s >= 0.0 and h >= 0.0 and sl >= 0.0
        assert h <= s  # a checking client never does worse than soft-fail
        assert h == pytest.approx(attack_window_days(s, exposure))
        assert sl <= s  # not renewing never extends the attacker's run


def test_shared_helpers_reproduce_the_inlined_formulas():
    assert staleness_window_days(3.0, 4.0) == pytest.approx(7.0)
    assert staleness_window_days(1.5) == pytest.approx(1.5)
    with pytest.raises(ValueError):
        staleness_window_days(-0.1)
    with pytest.raises(ValueError):
        staleness_window_days(1.0, -2.0)

    not_after = datetime.date(2015, 6, 1)
    may, june, july = (
        datetime.date(2015, 5, 1),
        datetime.date(2015, 6, 1),
        datetime.date(2015, 7, 1),
    )
    assert residual_life_days(not_after, may) == pytest.approx(31.0)
    assert residual_life_days(not_after, june) == pytest.approx(0.0)
    # Already expired at the compromise date: clamped, never negative.
    assert residual_life_days(not_after, july) == pytest.approx(0.0)
    assert isinstance(residual_life_days(not_after, may), float)

    assert attack_window_days(10.0, 7.0) == pytest.approx(7.0)  # exposure-bound
    assert attack_window_days(3.0, 7.0) == pytest.approx(3.0)  # life-bound
    assert attack_window_days(-5.0, 7.0) == pytest.approx(0.0)  # never negative
    assert attack_window_days(5.0, -1.0) == pytest.approx(0.0)
