"""The mechanism-conformance harness (docs/MECHANISMS.md).

One reusable contract suite every registered
:class:`repro.mechanisms.RevocationMechanism` must pass before it may
join the sweeps.  ``test_conformance.py`` parametrizes these checks over
the whole registry (CI runs them per mechanism, including under the
``REPRO_FAULT_PROFILE`` matrix); a new mechanism gets the entire battery
for free the moment it registers.

The checks, mirroring the contract in ``repro/mechanisms/base.py``:

* :func:`check_metadata` -- registration metadata is concrete and
  self-consistent;
* :func:`check_determinism` -- two independently built studies at the
  same calibration produce identical lookups, windows, payloads, and
  session costs;
* :func:`check_soundness` -- a covered revoked certificate is never
  reported ``GOOD`` once the staleness window has elapsed, an uncovered
  one is ``NO_INFO`` (never vouched for), and a never-revoked
  certificate is never reported ``REVOKED``;
* :func:`check_window_semantics` -- vulnerability windows are
  non-negative, monotone in the update interval, and clamped to the
  certificate's residual life;
* :func:`check_cost_accounting` -- :class:`CheckCost` invariants hold
  and the session cache never charges twice for the same artifact;
* :func:`check_active_faults` -- under fault injection, every network
  check bills its attempts and latency honestly (failures are not
  free), and push/lifetime mechanisms stay out of the fetch path;
* :func:`check_report_parity` -- the mechanism's rendered sweep block is
  byte-identical whether it is swept alone or with the full registry.
"""

from __future__ import annotations

import datetime
import math

from repro.ca.authority import CertificateAuthority
from repro.experiments.mechanisms import mechanism_blocks
from repro.mechanisms import (
    Delivery,
    RevocationMechanism,
    SessionState,
    get,
)
from repro.net.cache import ClientCache
from repro.net.clock import SimClock
from repro.net.endpoints import CrlEndpoint, OcspEndpoint
from repro.net.faults import plan_from_profile
from repro.net.fetcher import NetworkFetcher, RetryPolicy
from repro.net.transport import Network
from repro.pki.keys import KeyPair
from repro.revocation.checker import CheckOutcome, FailureClass, RevocationChecker

__all__ = [
    "build_fault_pki",
    "check_active_faults",
    "check_cost_accounting",
    "check_determinism",
    "check_metadata",
    "check_report_parity",
    "check_soundness",
    "check_window_semantics",
    "revoked_sample",
    "sample_leaves",
]

#: update intervals (days) the monotonicity check sweeps, in order.
WINDOW_INTERVALS = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def sample_leaves(ecosystem, limit: int = 250):
    """A deterministic spread of leaves (every Nth, ``limit`` total)."""
    leaves = ecosystem.leaves
    step = max(1, len(leaves) // limit)
    return leaves[::step][:limit]


def revoked_sample(ecosystem, end: datetime.date, limit: int = 250):
    """A deterministic spread of certificates revoked by ``end``."""
    revoked = [
        leaf
        for leaf in ecosystem.leaves
        if leaf.revoked_at is not None and leaf.revoked_at <= end
    ]
    step = max(1, len(revoked) // limit)
    return revoked[::step][:limit]


# ---------------------------------------------------------------------------
# registration metadata
# ---------------------------------------------------------------------------


def check_metadata(mechanism: RevocationMechanism) -> None:
    cls = type(mechanism)
    assert isinstance(mechanism, RevocationMechanism)
    name = mechanism.name
    assert name and name != RevocationMechanism.name, (
        f"{cls.__name__} must define a concrete name"
    )
    assert name == name.lower(), f"mechanism name {name!r} must be lower-case"
    assert get(name) is cls, f"{name!r} resolves to a different class"
    assert mechanism.title and mechanism.title != RevocationMechanism.title
    assert isinstance(mechanism.delivery, Delivery)
    if mechanism.fallback_priority is not None:
        # Only connection-time mechanisms may join the availability
        # experiment's active fallback chain.
        assert mechanism.uses_network, (
            f"{name!r} has a fallback_priority but uses_network=False"
        )
    model = mechanism.update_model()
    assert model.update_interval_days >= 0
    assert model.propagation_lag_days >= 0
    assert model.staleness_window_days == (
        model.update_interval_days + model.propagation_lag_days
    )


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


def check_determinism(
    mechanism: RevocationMechanism,
    twin: RevocationMechanism,
    end: datetime.date,
) -> None:
    """Same calibration, independently built substrate: every observable
    output must coincide (the seeded-pipeline contract)."""
    assert mechanism.name == twin.name
    assert mechanism.update_model() == twin.update_model()
    assert mechanism.payload_bytes(end) == twin.payload_bytes(end)

    dates = (end, end - datetime.timedelta(days=30))
    session_a, session_b = SessionState(), SessionState()
    for leaf_a, leaf_b in zip(
        sample_leaves(mechanism.ecosystem), sample_leaves(twin.ecosystem)
    ):
        assert leaf_a.cert_id == leaf_b.cert_id  # same substrate bytes
        assert mechanism.covers(leaf_a) == twin.covers(leaf_b)
        for at in dates:
            assert mechanism.lookup(leaf_a, at) is twin.lookup(leaf_b, at)
        if leaf_a.revoked_at is not None:
            assert mechanism.vulnerability_window_days(
                leaf_a
            ) == twin.vulnerability_window_days(leaf_b)
        cost_a = mechanism.check_cost(leaf_a, session_a)
        cost_b = twin.check_cost(leaf_b, session_b)
        assert cost_a == cost_b


# ---------------------------------------------------------------------------
# lookup soundness
# ---------------------------------------------------------------------------


def check_soundness(
    mechanism: RevocationMechanism, end: datetime.date
) -> None:
    """A revoked certificate is never vouched for once the mechanism's
    staleness window has elapsed; uncovered means ``NO_INFO``."""
    staleness = math.ceil(
        mechanism.update_model().staleness_window_days
    )
    for leaf in revoked_sample(mechanism.ecosystem, end):
        propagated = leaf.revoked_at + datetime.timedelta(days=staleness)
        for at in (propagated, propagated + datetime.timedelta(days=30)):
            outcome = mechanism.lookup(leaf, at)
            if mechanism.covers(leaf):
                assert outcome is not CheckOutcome.GOOD, (
                    f"{mechanism.name} reported GOOD for covered revoked "
                    f"cert {leaf.cert_id} at {at} "
                    f"(revoked {leaf.revoked_at}, staleness {staleness}d)"
                )
            else:
                assert outcome is CheckOutcome.NO_INFO, (
                    f"{mechanism.name} answered {outcome} for uncovered "
                    f"revoked cert {leaf.cert_id}; must be NO_INFO"
                )
    # The converse -- no false positives: a leaf with a fully clean
    # chain (neither it nor its intermediate ever revoked) is never
    # reported revoked.  Chain-scoped mechanisms (OneCRL) legitimately
    # block clean leaves under a revoked intermediate, so the ground
    # truth here is the chain, not the leaf alone.
    intermediates = {
        record.intermediate_id: record
        for record in mechanism.ecosystem.intermediates
    }
    for leaf in sample_leaves(mechanism.ecosystem):
        if leaf.revoked_at is not None:
            continue
        if intermediates[leaf.intermediate_id].revoked_at is not None:
            continue
        for at in (leaf.not_before, leaf.not_after, end):
            assert mechanism.lookup(leaf, at) is not CheckOutcome.REVOKED, (
                f"{mechanism.name} revoked cert {leaf.cert_id} at {at} "
                "despite its whole chain being clean"
            )


# ---------------------------------------------------------------------------
# vulnerability-window semantics
# ---------------------------------------------------------------------------


def check_window_semantics(
    mechanism: RevocationMechanism, end: datetime.date
) -> None:
    """Windows are non-negative, monotone non-decreasing in the update
    interval, and never outlive the certificate."""
    for leaf in revoked_sample(mechanism.ecosystem, end):
        residual = max(0.0, float((leaf.not_after - leaf.revoked_at).days))
        previous = None
        for interval in WINDOW_INTERVALS:
            window = mechanism.vulnerability_window_days(
                leaf, update_interval_days=interval
            )
            assert window >= 0.0, (
                f"{mechanism.name} window {window} < 0 for {leaf.cert_id}"
            )
            assert window <= residual, (
                f"{mechanism.name} window {window} outlives cert "
                f"{leaf.cert_id} (residual life {residual})"
            )
            if previous is not None:
                assert window >= previous, (
                    f"{mechanism.name} window shrank ({previous} -> "
                    f"{window}) as the update interval grew to {interval}"
                )
            previous = window
    never_revoked = next(
        leaf
        for leaf in mechanism.ecosystem.leaves
        if leaf.revoked_at is None
    )
    try:
        mechanism.vulnerability_window_days(never_revoked)
    except ValueError:
        pass
    else:
        raise AssertionError(
            f"{mechanism.name} computed a window for a never-revoked cert"
        )


# ---------------------------------------------------------------------------
# client-cost accounting
# ---------------------------------------------------------------------------


def check_cost_accounting(mechanism: RevocationMechanism) -> None:
    """CheckCost invariants plus session-cache honesty."""
    session = SessionState()
    total_bytes = 0
    leaves = sample_leaves(mechanism.ecosystem, limit=120)
    for leaf in leaves:
        cost = mechanism.check_cost(leaf, session)
        assert cost.fetches == len(cost.fetched)
        assert cost.bytes_downloaded == sum(cost.fetched)
        assert all(size >= 0 for size in cost.fetched)
        assert not (cost.cache_hit and cost.fetched), (
            f"{mechanism.name} billed bytes for a cache hit"
        )
        total_bytes += cost.bytes_downloaded
    # Re-checking the same leaves in the same session must ride the
    # caches: no artifact is paid for twice.
    for leaf in leaves:
        again = mechanism.check_cost(leaf, session)
        assert again.bytes_downloaded == 0, (
            f"{mechanism.name} re-billed {again.bytes_downloaded} bytes "
            f"for cert {leaf.cert_id} within one session"
        )
    if not mechanism.uses_network:
        assert total_bytes == 0, (
            f"{mechanism.name} claims uses_network=False but billed "
            f"{total_bytes} bytes at browse time"
        )


# ---------------------------------------------------------------------------
# honest failure costs under fault injection
# ---------------------------------------------------------------------------

_UTC = datetime.timezone.utc
_PKI_NOW = datetime.datetime(2015, 4, 15, 9, 0, tzinfo=_UTC)
_N_FAULT_LEAVES = 12
_N_FAULT_REVOKED = 4


def build_fault_pki(seed: int = 7):
    """A dedicated one-root PKI serving CRL + OCSP, for driving
    ``active_check`` through the seeded fault layer (the availability
    experiment's harness, miniaturised)."""
    ca = CertificateAuthority.create_root(
        common_name="Conformance CA",
        seed=f"conformance/{seed}/root",
        not_before=datetime.datetime(2014, 6, 1, tzinfo=_UTC),
        not_after=datetime.datetime(2016, 6, 1, tzinfo=_UTC),
        crl_base_url="http://crl.conformance.example",
        ocsp_url="http://ocsp.conformance.example/q",
    )
    leaves = []
    for i in range(_N_FAULT_LEAVES):
        keys = KeyPair.generate(f"conformance/{seed}/leaf{i}")
        leaf = ca.issue_leaf(
            common_name=f"site{i}.conformance.example",
            public_key=keys.public_key,
            not_before=datetime.datetime(2014, 6, 1, tzinfo=_UTC),
            not_after=datetime.datetime(2016, 6, 1, tzinfo=_UTC),
        )
        leaves.append(leaf)
        if i < _N_FAULT_REVOKED:
            ca.revoke(
                leaf.serial_number, _PKI_NOW - datetime.timedelta(days=30)
            )
    return ca, leaves


def _wire_network(ca: CertificateAuthority, plan) -> Network:
    network = Network(faults=plan, timeout=datetime.timedelta(seconds=5))
    publisher = ca.crl_publisher
    for url in publisher.urls:
        network.register(
            url,
            CrlEndpoint(
                lambda at, publisher=publisher, url=url: publisher.encode(
                    url, at
                ).to_der()
            ),
        )
    network.register(ca.ocsp_url, OcspEndpoint(ca.ocsp_responder.respond))
    return network


def check_active_faults(
    mechanism: RevocationMechanism,
    profile: str,
    *,
    seed: int = 7,
) -> None:
    """Every byte and attempt a client pays under ``profile`` shows up in
    the returned :class:`CheckResult` and the fetcher's ``FetchStats``;
    push/lifetime mechanisms never enter the fetch path at all."""
    ca, leaves = build_fault_pki(seed)
    plan = plan_from_profile(profile, seed=seed)
    network = _wire_network(ca, plan)
    clock = SimClock(_PKI_NOW)
    definitive = 0
    for i, leaf in enumerate(leaves):
        # One independent client per connection (fresh caches and
        # breaker), so a warm cache never masks a later fault.
        fetcher = NetworkFetcher(
            network,
            clock_now=lambda: clock.now,
            cache=ClientCache(),
            retry_policy=RetryPolicy.aggressive(),
            seed=seed * 1_000 + i,
        )
        checker = RevocationChecker(fetcher)
        at = clock.advance(datetime.timedelta(seconds=30))
        result = mechanism.active_check(
            checker, leaf, at, issuer_key_hash=ca.issuer_key_hash
        )
        if not mechanism.uses_network:
            assert result is None, (
                f"{mechanism.name} (uses_network=False) performed a live "
                "network check"
            )
            assert fetcher.stats.attempts == 0
            continue
        if result is None:
            # Network mechanisms outside the active fallback chain
            # (e.g. stapling's handshake delivery) may decline.
            assert mechanism.fallback_priority is None, (
                f"{mechanism.name} is in the fallback chain but returned "
                "no check"
            )
            continue
        stats = fetcher.stats
        # Honest accounting: what the result bills equals what the
        # fetcher actually did -- failed attempts included.
        assert result.attempts == stats.attempts, (
            f"{mechanism.name} billed {result.attempts} attempts but the "
            f"fetcher made {stats.attempts}"
        )
        assert result.bytes_downloaded == stats.bytes_downloaded
        assert result.attempts >= 1
        assert result.latency >= datetime.timedelta(0)
        assert result.latency >= stats.latency_total, (
            f"{mechanism.name} under-billed latency: {result.latency} < "
            f"wire time {stats.latency_total}"
        )
        if result.is_definitive:
            definitive += 1
            assert result.failure is FailureClass.NONE
        else:
            # A failure is classified, and it was not free.
            assert result.failure is not FailureClass.NONE
            assert result.attempts >= 1
    if mechanism.uses_network and mechanism.fallback_priority is not None:
        if profile == "none":
            assert definitive == len(leaves), (
                f"{mechanism.name} failed checks on a fault-free network"
            )
        else:
            assert definitive >= 1, (
                f"{mechanism.name} got no definitive answer at all under "
                f"profile {profile!r}"
            )


# ---------------------------------------------------------------------------
# report-byte parity
# ---------------------------------------------------------------------------


def check_report_parity(
    name: str, full_blocks: dict[str, str], restricted_study
) -> None:
    """The mechanism's sweep block must not depend on which other
    mechanisms are registered: run_one's ``mechanism=`` restriction and
    the full-registry sweep render identical bytes."""
    blocks = mechanism_blocks(restricted_study)
    assert list(blocks) == [name]
    assert blocks[name] == full_blocks[name], (
        f"{name}'s sweep block changes when swept alone -- it must "
        "depend only on the substrate and the mechanism itself"
    )
