"""Checkpoint journal: atomicity, validation, staleness, abort mark."""

from __future__ import annotations

import json

from repro.exec.checkpoint import (
    CheckpointJournal,
    pickle_payload,
    unpickle_payload,
)

RUN_KEY = "cal-abc123/net=none/0"


def _journal(tmp_path, run_key=RUN_KEY):
    return CheckpointJournal(tmp_path / "run.jsonl", run_key)


class TestRoundTrip:
    def test_record_then_reload(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record("fig2", {"answer": 42})
        journal.record("fig3", {"answer": 43})
        reloaded = _journal(tmp_path)
        assert reloaded.get("fig2") == {"answer": 42}
        assert reloaded.tasks() == ["fig2", "fig3"]
        assert len(reloaded) == 2

    def test_missing_journal_is_empty(self, tmp_path):
        journal = _journal(tmp_path)
        assert journal.get("fig2") is None
        assert journal.tasks() == []

    def test_record_overwrites_same_task(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record("fig2", {"v": 1})
        journal.record("fig2", {"v": 2})
        assert _journal(tmp_path).get("fig2") == {"v": 2}

    def test_no_temp_files_left_behind(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record("fig2", {"v": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["run.jsonl"]

    def test_pickle_payload_roundtrip(self):
        payload = pickle_payload({"nested": [1, 2, (3, 4)]})
        assert set(payload) == {"pickle"}
        json.dumps(payload)  # JSON-safe by construction
        assert unpickle_payload(payload) == {"nested": [1, 2, (3, 4)]}


class TestDefensiveReads:
    def test_torn_tail_line_is_skipped(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record("fig2", {"v": 1})
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "run_key": "cal-abc123/net=non')
        reloaded = _journal(tmp_path)
        assert reloaded.tasks() == ["fig2"]

    def test_tampered_line_is_a_miss(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record("fig2", {"v": 1})
        text = journal.path.read_text()
        journal.path.write_text(text.replace('"v": 1', '"v": 2'))
        assert _journal(tmp_path).get("fig2") is None

    def test_different_run_key_is_a_miss(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record("fig2", {"v": 1})
        stale = _journal(tmp_path, run_key="cal-other/net=none/0")
        assert stale.get("fig2") is None
        assert stale.tasks() == []

    def test_non_journal_garbage_is_empty(self, tmp_path):
        (tmp_path / "run.jsonl").write_text("not json\n[1, 2]\n{}\n")
        assert _journal(tmp_path).tasks() == []


class TestLifecycle:
    def test_start_fresh_drops_everything(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record("fig2", {"v": 1})
        journal.start_fresh()
        assert journal.tasks() == []
        assert not journal.path.exists()
        assert _journal(tmp_path).tasks() == []

    def test_abort_mark_survives_reload(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record("fig2", {"v": 1})
        assert not journal.aborted
        journal.mark_aborted()
        reloaded = _journal(tmp_path)
        assert reloaded.aborted
        # The mark is bookkeeping, not a completed task.
        assert reloaded.tasks() == ["fig2"]
        assert len(reloaded) == 1
