"""Supervisor recovery paths: kills, hangs, errors, degradation, abort."""

from __future__ import annotations

import pytest

from repro.exec.faults import ExecFaultKind, ExecFaultPlan, ExecFaultSpec
from repro.exec.supervisor import (
    RunInterrupted,
    Supervisor,
    SupervisorConfig,
)


def _square(payload):
    return payload * payload


def _flaky(payload):
    if payload == "boom":
        raise ValueError("worker boom")
    return payload


def _fast_config(**overrides):
    defaults = dict(
        workers=2,
        task_timeout=10.0,
        max_task_attempts=3,
        respawn_budget=16,
        backoff_base=0.01,
        poll_interval=0.02,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def _tasks(n):
    return [(f"t{i}", i) for i in range(n)]


def _kill_plan(attempts=(0,)):
    plan = ExecFaultPlan(seed=0)
    plan.add(
        ExecFaultSpec(ExecFaultKind.KILL, probability=1.0, attempts=attempts)
    )
    return plan


class TestHappyPath:
    def test_parallel_runs_every_task(self):
        outcome = Supervisor(_fast_config()).run(_tasks(6), _square)
        assert outcome.results == {f"t{i}": i * i for i in range(6)}
        assert outcome.failures == []
        assert outcome.retries == outcome.respawns == 0

    def test_serial_matches_parallel(self):
        serial = Supervisor(_fast_config(workers=1)).run(_tasks(6), _square)
        parallel = Supervisor(_fast_config(workers=3)).run(_tasks(6), _square)
        assert serial.results == parallel.results

    def test_on_complete_fires_per_task(self):
        seen = []
        Supervisor(_fast_config(workers=1)).run(
            _tasks(4), _square, on_complete=lambda tid, r: seen.append((tid, r))
        )
        assert seen == [(f"t{i}", i * i) for i in range(4)]

    def test_backoff_is_deterministic(self):
        a = Supervisor(_fast_config())._backoff("t3", 1)
        b = Supervisor(_fast_config())._backoff("t3", 1)
        assert a == b > 0


class TestKillRecovery:
    def test_killed_workers_are_respawned_and_tasks_retried(self):
        supervisor = Supervisor(_fast_config(), faults=_kill_plan())
        outcome = supervisor.run(_tasks(4), _square)
        assert outcome.results == {f"t{i}": i * i for i in range(4)}
        assert outcome.retries == 4
        assert outcome.respawns >= 1
        kinds = {record.kind for record in outcome.failures}
        assert kinds == {"worker-death"}
        assert all("code 23" in r.detail for r in outcome.failures)

    def test_unkillable_tasks_degrade_to_in_process(self):
        # Every attempt dies and nothing may respawn: the fleet drains
        # and the parent finishes the work inline.
        supervisor = Supervisor(
            _fast_config(respawn_budget=0, max_task_attempts=10),
            faults=_kill_plan(attempts=None),
        )
        outcome = supervisor.run(_tasks(4), _square)
        assert outcome.results == {f"t{i}": i * i for i in range(4)}
        assert set(outcome.degraded) | {
            r.task_id for r in outcome.failures if r.kind == "worker-death"
        } == {f"t{i}" for i in range(4)}
        assert outcome.respawns == 0


class TestHangRecovery:
    def test_watchdog_times_out_wedged_workers(self):
        plan = ExecFaultPlan(seed=0)
        plan.add(
            ExecFaultSpec(
                ExecFaultKind.HANG,
                probability=1.0,
                attempts=(0,),
                hang_seconds=30.0,
            )
        )
        supervisor = Supervisor(_fast_config(task_timeout=0.4), faults=plan)
        outcome = supervisor.run(_tasks(2), _square)
        assert outcome.results == {"t0": 0, "t1": 1}
        assert {r.kind for r in outcome.failures} == {"timeout"}
        assert outcome.retries == 2


class TestErrorHandling:
    def test_worker_errors_retry_then_degrade_via_local_fn(self):
        supervisor = Supervisor(_fast_config(max_task_attempts=2))
        outcome = supervisor.run(
            [("ok", "fine"), ("bad", "boom")],
            _flaky,
            local_fn=lambda payload: f"local:{payload}",
        )
        assert outcome.results["ok"] == "fine"
        assert outcome.results["bad"] == "local:boom"
        assert outcome.degraded == ["bad"]
        error_records = [r for r in outcome.failures if r.kind == "error"]
        assert error_records and all(
            "worker boom" in r.detail for r in error_records
        )

    def test_serial_retries_transient_errors(self):
        calls = {"n": 0}

        def flaky_local(payload):
            calls["n"] += 1
            if payload == 1 and calls["n"] < 3:
                raise RuntimeError("transient")
            return payload

        outcome = Supervisor(_fast_config(workers=1)).run(
            _tasks(3), flaky_local
        )
        assert outcome.results == {"t0": 0, "t1": 1, "t2": 2}
        assert outcome.retries == 1

    def test_serial_exhausted_attempts_raise(self):
        def always_broken(payload):
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            Supervisor(_fast_config(workers=1, max_task_attempts=2)).run(
                _tasks(2), always_broken
            )


class TestAbort:
    def _abort_plan(self, after):
        plan = ExecFaultPlan(seed=0)
        plan.add(
            ExecFaultSpec(
                ExecFaultKind.ABORT, probability=1.0, after_tasks=after
            )
        )
        return plan

    def test_abort_interrupts_after_threshold(self):
        completed = []
        supervisor = Supervisor(
            _fast_config(workers=1), faults=self._abort_plan(3)
        )
        with pytest.raises(RunInterrupted) as info:
            supervisor.run(
                _tasks(6),
                _square,
                on_complete=lambda tid, r: completed.append(tid),
            )
        assert completed == ["t0", "t1", "t2"]
        assert info.value.completed == 3
        assert info.value.remaining == ["t3", "t4", "t5"]
        assert "--resume" in str(info.value)

    def test_completed_before_counts_toward_threshold(self):
        supervisor = Supervisor(
            _fast_config(workers=1), faults=self._abort_plan(3)
        )
        with pytest.raises(RunInterrupted) as info:
            supervisor.run(_tasks(4), _square, completed_before=2)
        assert info.value.completed == 3

    def test_allow_abort_false_completes(self):
        supervisor = Supervisor(
            _fast_config(workers=1), faults=self._abort_plan(2)
        )
        outcome = supervisor.run(_tasks(5), _square, allow_abort=False)
        assert len(outcome.results) == 5

    def test_abort_fires_even_on_the_last_task(self):
        supervisor = Supervisor(
            _fast_config(workers=1), faults=self._abort_plan(3)
        )
        with pytest.raises(RunInterrupted) as info:
            supervisor.run(_tasks(3), _square)
        assert info.value.completed == 3
        assert info.value.remaining == []
