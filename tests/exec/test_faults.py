"""Process/storage fault plans: determinism, profiles, file edits."""

from __future__ import annotations

import pytest

from repro.exec.faults import (
    EXEC_PROFILES,
    ExecFaultKind,
    ExecFaultPlan,
    ExecFaultSpec,
    plan_from_exec_profile,
)


class TestSpecValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            ExecFaultSpec(ExecFaultKind.KILL, probability=1.5)
        with pytest.raises(ValueError):
            ExecFaultSpec(ExecFaultKind.KILL, probability=-0.1)

    def test_abort_requires_after_tasks(self):
        with pytest.raises(ValueError):
            ExecFaultSpec(ExecFaultKind.ABORT)
        with pytest.raises(ValueError):
            ExecFaultSpec(ExecFaultKind.ABORT, after_tasks=0)
        assert ExecFaultSpec(ExecFaultKind.ABORT, after_tasks=1).after_tasks == 1

    def test_hang_seconds_positive(self):
        with pytest.raises(ValueError):
            ExecFaultSpec(ExecFaultKind.HANG, hang_seconds=0.0)

    def test_attempt_restriction(self):
        spec = ExecFaultSpec(ExecFaultKind.KILL, attempts=(0,))
        assert spec.applies_to_attempt(0)
        assert not spec.applies_to_attempt(1)
        assert ExecFaultSpec(
            ExecFaultKind.KILL, attempts=None
        ).applies_to_attempt(5)


class TestDeterminism:
    """Every decision is a pure function of (seed, identifier, attempt)."""

    def _plan(self, seed=7):
        plan = ExecFaultPlan(seed=seed)
        plan.add(ExecFaultSpec(ExecFaultKind.KILL, probability=0.5))
        return plan

    def test_same_seed_same_decisions(self):
        a = self._plan()
        b = self._plan()
        ids = [f"t{i}" for i in range(64)]
        assert [a.decide_task(t, 0) for t in ids] == [
            b.decide_task(t, 0) for t in ids
        ]

    def test_decisions_do_not_depend_on_call_order(self):
        ordered = [self._plan().decide_task(f"t{i}", 0) for i in range(16)]
        plan = self._plan()
        reversed_calls = {
            f"t{i}": plan.decide_task(f"t{i}", 0) for i in reversed(range(16))
        }
        assert ordered == [reversed_calls[f"t{i}"] for i in range(16)]

    def test_different_seeds_differ(self):
        ids = [f"t{i}" for i in range(64)]
        a = [self._plan(seed=1).decide_task(t, 0) for t in ids]
        b = [self._plan(seed=2).decide_task(t, 0) for t in ids]
        assert a != b

    def test_first_attempt_only_by_default(self):
        plan = ExecFaultPlan(seed=0)
        plan.add(ExecFaultSpec(ExecFaultKind.KILL, probability=1.0))
        assert plan.decide_task("t0", 0) is ExecFaultKind.KILL
        assert plan.decide_task("t0", 1) is None

    def test_zero_probability_never_fires(self):
        plan = ExecFaultPlan(seed=0)
        plan.add(ExecFaultSpec(ExecFaultKind.KILL, probability=0.0))
        assert all(
            plan.decide_task(f"t{i}", 0) is None for i in range(100)
        )


class TestWriteFaults:
    def _plan(self, kind):
        plan = ExecFaultPlan(seed=3)
        plan.add(ExecFaultSpec(kind, probability=1.0))
        return plan

    def test_torn_write_truncates(self, tmp_path):
        target = tmp_path / "store.bin"
        target.write_bytes(bytes(range(256)) * 8)
        fault = self._plan(ExecFaultKind.TORN_WRITE).decide_write("corpus", 0)
        assert fault is not None
        fault(target)
        assert target.stat().st_size == 1024

    def test_flip_write_flips_one_back_half_byte(self, tmp_path):
        target = tmp_path / "store.bin"
        original = bytes(256) * 8
        target.write_bytes(original)
        fault = self._plan(ExecFaultKind.FLIP_WRITE).decide_write("corpus", 0)
        assert fault is not None
        fault(target)
        damaged = target.read_bytes()
        assert len(damaged) == len(original)
        diffs = [i for i, (a, b) in enumerate(zip(original, damaged)) if a != b]
        assert len(diffs) == 1
        assert diffs[0] >= len(original) // 2

    def test_write_faults_skip_later_attempts(self):
        plan = self._plan(ExecFaultKind.TORN_WRITE)
        assert plan.decide_write("corpus", 0) is not None
        assert plan.decide_write("corpus", 1) is None


class TestProfiles:
    def test_none_profile_is_empty(self):
        assert EXEC_PROFILES["none"] == []
        plan = plan_from_exec_profile("none", seed=9)
        assert len(plan) == 0
        assert plan.decide_task("t0", 0) is None
        assert plan.abort_after is None

    def test_kill_worker_profile_aborts(self):
        plan = plan_from_exec_profile("kill-worker", seed=1)
        assert plan.abort_after == 6

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown exec fault profile"):
            plan_from_exec_profile("meteor-strike")

    def test_task_kinds_converge_under_bounded_retries(self):
        """Every named profile restricts KILL/HANG to attempt 0, so a
        supervisor with max_task_attempts >= 2 always finishes."""
        for name, specs in EXEC_PROFILES.items():
            for spec in specs:
                if spec.kind in (ExecFaultKind.KILL, ExecFaultKind.HANG):
                    assert spec.attempts == (0,), (name, spec.kind)
