"""CLI surface of the execution layer: flags, exit codes, verify."""

from __future__ import annotations

import re

import pytest

from repro.__main__ import main

SCALE_ARGS = ["--scale", "0.0005", "--seed", "3"]


class TestFlagValidation:
    def test_supervise_rejected_for_single_experiment(self, capsys):
        assert main(["run", "fig2", "--supervise"]) == 2
        assert "all" in capsys.readouterr().err

    def test_resume_rejected_for_single_experiment(self, capsys):
        assert main(["run", "fig2", "--resume"]) == 2

    def test_unknown_exec_fault_profile(self, capsys):
        assert (
            main(
                ["run", "all", "--supervise", "--exec-fault-profile", "bogus"]
            )
            == 2
        )
        assert "exec fault profile" in capsys.readouterr().err

    def test_unknown_exec_fault_profile_on_corpus_build(self, capsys, tmp_path):
        assert (
            main(
                [
                    "corpus",
                    "build",
                    str(tmp_path),
                    "--supervise",
                    "--exec-fault-profile",
                    "bogus",
                ]
            )
            == 2
        )
        assert "exec fault profile" in capsys.readouterr().err


class TestCorpusVerifyCommand:
    @pytest.fixture()
    def store(self, tmp_path, capsys):
        assert (
            main(["corpus", "build", str(tmp_path), *SCALE_ARGS]) == 0
        )
        out = capsys.readouterr().out
        return next(tmp_path.glob("corpus-*.sqlite"))

    def test_verify_sound_store(self, store, capsys):
        assert main(["corpus", "verify", str(store)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_corrupt_store_exits_1(self, store, capsys):
        with open(store, "r+b") as handle:
            handle.truncate(store.stat().st_size // 2)
        assert main(["corpus", "verify", str(store)]) == 1
        assert "unreadable" in capsys.readouterr().out

    def test_verify_quarantine_moves_store(self, store, capsys):
        with open(store, "r+b") as handle:
            handle.truncate(store.stat().st_size // 2)
        assert main(["corpus", "verify", str(store), "--quarantine"]) == 1
        out = capsys.readouterr().out
        assert "quarantined ->" in out
        assert not store.exists()
        assert store.with_name(store.name + ".quarantined").exists()


class TestSupervisedCorpusBuild:
    def test_interrupt_resume_reproduces_the_plain_digest(
        self, tmp_path, capsys
    ):
        plain_dir, chaos_dir = tmp_path / "plain", tmp_path / "chaos"
        assert (
            main(["corpus", "build", str(plain_dir), *SCALE_ARGS]) == 0
        )
        plain_digest = re.search(
            r"corpus_digest\s+(\S+)", capsys.readouterr().out
        )
        assert plain_digest is not None

        chaos_args = [
            "corpus",
            "build",
            str(chaos_dir),
            *SCALE_ARGS,
            "--shards",
            "6",
            "--workers",
            "2",
            "--supervise",
            "--exec-fault-profile",
            "chaos-proc",
            "--exec-fault-seed",
            "1",
        ]
        assert main(chaos_args) == 3
        captured = capsys.readouterr()
        assert captured.out == ""  # interruption goes to stderr only
        assert "--resume" in captured.err

        assert main(chaos_args + ["--resume"]) == 0
        resumed_out = capsys.readouterr().out
        assert plain_digest.group(1) in resumed_out
