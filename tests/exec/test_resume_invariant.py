"""The headline robustness invariant: interrupt + resume == uninterrupted.

A run killed partway by injected worker/process faults and resumed from
its checkpoint journal must produce *byte-identical* reports (and for
corpus builds an identical ``corpus_digest``) to a run that was never
interrupted; and with the fault profile ``none``, supervision itself
must not change a single output byte.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.core.pipeline import MeasurementStudy
from repro.exec.corpusbuild import build_corpus_supervised
from repro.exec.supervisor import RunInterrupted, SupervisorConfig
from repro.experiments.runner import run_all, run_supervised
from repro.scan.calibration import Calibration

SCALE = 0.0005
SEED = 3
#: seed 1 kills five of the fifteen experiment legs on their first
#: attempt under ``kill-worker`` -- the pinned CI chaos seed.
KILL_SEED = 1


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("warm-store"))


def _study(cache_dir, **kwargs) -> MeasurementStudy:
    return MeasurementStudy(
        calibration=Calibration(scale=SCALE, seed=SEED),
        cache_dir=cache_dir,
        exec_fault_profile=kwargs.pop("exec_fault_profile", "none"),
        **kwargs,
    )


@pytest.fixture(scope="module")
def baseline_renders(cache_dir) -> list[str]:
    """Unsupervised ``run_all`` output: the bytes every supervised
    variant must reproduce exactly."""
    results = run_all(_study(cache_dir), parallel=2)
    return [result.render() for result in results]


class TestRunAllInvariant:
    def test_supervision_alone_changes_no_bytes(
        self, cache_dir, baseline_renders, tmp_path
    ):
        results = run_supervised(
            _study(cache_dir), parallel=2, checkpoint_dir=tmp_path
        )
        assert [r.render() for r in results] == baseline_renders

    def test_kill_worker_interrupt_then_resume_is_byte_identical(
        self, cache_dir, baseline_renders, tmp_path
    ):
        chaos = _study(
            cache_dir,
            exec_fault_profile="kill-worker",
            exec_fault_seed=KILL_SEED,
        )
        with pytest.raises(RunInterrupted) as info:
            run_supervised(chaos, parallel=2, checkpoint_dir=tmp_path)
        assert info.value.completed >= 6  # the profile aborts after 6
        assert info.value.remaining

        # Resume under a different profile: exec faults never change
        # results, so the journal is valid across profiles -- and the
        # abort mark keeps the resumed run from aborting again.
        results = run_supervised(
            _study(cache_dir),
            parallel=2,
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert [r.render() for r in results] == baseline_renders

    def test_run_key_separates_calibrations_and_net_faults(self, cache_dir):
        """The journal key covers everything the results depend on (and
        nothing else): calibration + network faults, never exec faults."""
        from repro.experiments.runner import _run_key

        base = _run_key(_study(cache_dir))
        other_seed = MeasurementStudy(
            calibration=Calibration(scale=SCALE, seed=SEED + 1)
        )
        net_faults = MeasurementStudy(
            calibration=Calibration(scale=SCALE, seed=SEED),
            fault_profile="chaos",
        )
        exec_faults = _study(
            cache_dir,
            exec_fault_profile="kill-worker",
            exec_fault_seed=KILL_SEED,
        )
        assert _run_key(other_seed) != base
        assert _run_key(net_faults) != base
        assert _run_key(exec_faults) == base


class TestCorpusBuildInvariant:
    def test_chaos_interrupt_then_resume_matches_clean_build(
        self, tmp_path
    ):
        calibration = Calibration(scale=SCALE, seed=SEED)
        config = SupervisorConfig(workers=2, backoff_base=0.01)

        clean = build_corpus_supervised(
            tmp_path / "clean",
            calibration=calibration,
            shards=6,
            config=config,
        )
        assert clean["reused"] is False

        chaos_dir = tmp_path / "chaos"
        # Six shard tasks, so the chaos-proc ABORT (after 4) leaves
        # real work for the resumed run.
        faults_kwargs = dict(
            calibration=calibration, shards=6, config=config
        )
        from repro.exec.faults import plan_from_exec_profile

        with pytest.raises(RunInterrupted):
            build_corpus_supervised(
                chaos_dir,
                faults=plan_from_exec_profile("chaos-proc", seed=1),
                **faults_kwargs,
            )
        resumed = build_corpus_supervised(
            chaos_dir,
            resume=True,
            faults=plan_from_exec_profile("chaos-proc", seed=1),
            **faults_kwargs,
        )
        assert resumed["corpus_digest"] == clean["corpus_digest"]
        assert resumed["resumed_shards"] >= 1

        # And the store verifies + reuses cleanly afterwards.
        assert api.corpus.verify(resumed["path"]) == []
        again = build_corpus_supervised(chaos_dir, **faults_kwargs)
        assert again["reused"] is True
        assert again["corpus_digest"] == clean["corpus_digest"]

    def test_supervised_build_matches_unsupervised_api_build(self, tmp_path):
        calibration = Calibration(scale=SCALE, seed=SEED)
        supervised = build_corpus_supervised(
            tmp_path / "sup",
            calibration=calibration,
            shards=3,
            config=SupervisorConfig(workers=2),
        )
        plain = api.corpus.build(
            tmp_path / "plain", scale=SCALE, seed=SEED, shards=1
        )
        assert supervised["corpus_digest"] == plain["corpus_digest"]
