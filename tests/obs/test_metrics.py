"""Metrics registry unit tests: instruments, export order, merging."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, _NullInstrument, flat_key


class TestDisabled:
    def test_all_accessors_return_shared_null(self):
        registry = MetricsRegistry(enabled=False)
        assert isinstance(registry.counter("c"), _NullInstrument)
        assert isinstance(registry.gauge("g"), _NullInstrument)
        assert isinstance(registry.histogram("h"), _NullInstrument)
        assert registry.export() == []
        assert registry.op_count == 0


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("fetches", kind="crl")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_labels_key_distinct_instruments(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("fetches", kind="crl").inc()
        registry.counter("fetches", kind="ocsp").inc(2)
        assert registry.counter("fetches", kind="crl").value == 1
        assert registry.counter("fetches", kind="ocsp").value == 2

    def test_histogram_tracks_count_sum_min_max(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("latency")
        for value in (5, 1, 9):
            histogram.observe(value)
        assert (histogram.count, histogram.total) == (3, 15)
        assert (histogram.min, histogram.max) == (1, 9)


class TestExport:
    def test_export_is_sorted_and_json_ready(self):
        registry = MetricsRegistry(enabled=True)
        registry.gauge("z").set(3)
        registry.counter("a", kind="crl").inc()
        records = registry.export()
        assert [(r["kind"], r["name"]) for r in records] == [
            ("counter", "a"),
            ("gauge", "z"),
        ]
        assert records[0]["labels"] == {"kind": "crl"}

    def test_op_count_increases_with_touches(self):
        registry = MetricsRegistry(enabled=True)
        before = registry.op_count
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.op_count == before + 2


class TestSnapshot:
    """counter_snapshot feeds the tracer's per-span counter marks."""

    def test_flat_key_sorts_labels(self):
        assert flat_key("fetches", {}) == "fetches"
        assert (
            flat_key("fetches", {"outcome": "ok", "kind": "crl"})
            == "fetches{kind=crl}{outcome=ok}"
        )

    def test_snapshot_covers_counters_only(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("fetches", kind="crl").inc(3)
        registry.gauge("depth").set(9)
        registry.histogram("latency").observe(5)
        assert registry.counter_snapshot() == {"fetches{kind=crl}": 3}

    def test_snapshot_is_read_only(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("a").inc()
        before = registry.op_count
        snapshot = registry.counter_snapshot()
        assert registry.op_count == before
        snapshot["a"] = 999
        assert registry.counter_snapshot() == {"a": 1}


class TestMerge:
    def test_merge_adds_counters_and_histograms_maxes_gauges(self):
        worker = MetricsRegistry(enabled=True)
        worker.counter("fetches").inc(3)
        worker.gauge("high_water").set(7)
        worker.histogram("latency").observe(2)
        worker.histogram("latency").observe(10)

        parent = MetricsRegistry(enabled=True)
        parent.counter("fetches").inc(1)
        parent.gauge("high_water").set(9)
        parent.histogram("latency").observe(5)
        parent.merge(worker.export())

        assert parent.counter("fetches").value == 4
        assert parent.gauge("high_water").value == 9
        histogram = parent.histogram("latency")
        assert (histogram.count, histogram.total) == (3, 17)
        assert (histogram.min, histogram.max) == (2, 10)

    def test_merge_is_order_independent(self):
        def worker(seed):
            registry = MetricsRegistry(enabled=True)
            registry.counter("fetches").inc(seed)
            registry.histogram("latency").observe(seed * 2)
            registry.gauge("peak").set(seed)
            return registry.export()

        a, b = worker(3), worker(5)
        left = MetricsRegistry(enabled=True)
        left.merge(a)
        left.merge(b)
        right = MetricsRegistry(enabled=True)
        right.merge(b)
        right.merge(a)
        assert left.export() == right.export()
