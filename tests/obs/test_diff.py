"""Span-diff tests: alignment, counter attribution, and the CLI contract.

The guarantee under test (ISSUE 5 / docs/OBSERVABILITY.md): same seed +
same config => empty diff; ``none`` vs ``flaky`` fault profiles => the
diff is non-empty and localizes to the fetcher/circuit-breaker path.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.__main__ import main
from repro.obs import Observability
from repro.obs.diff import (
    TraceDiff,
    diff_traces,
    render_diff_json,
    render_diff_text,
)
from repro.obs.report import flame_table, owned_counters, span_children


def _synthetic(extra_stage: bool = False, slow: bool = False) -> list[dict]:
    """A small hand-driven trace with real counter marks."""
    obs = Observability(enabled=True)
    with obs.tracer.span("experiment", experiment="x"):
        with obs.tracer.span("stage", stage="crawl"):
            obs.metrics.counter("fetch.fetches", kind="crl").inc(3)
            obs.tracer.event(
                "fetch",
                kind="crl",
                outcome="ok",
                latency_ms=250.0 if slow else 5.0,
                bytes=10,
            )
        if extra_stage:
            with obs.tracer.span("stage", stage="retry"):
                obs.metrics.counter(
                    "fetch.outcomes", kind="crl", outcome="timeout"
                ).inc(2)
    return obs.export_records()


class TestCounterMarks:
    def test_span_records_exact_movement(self):
        records = _synthetic()
        crawl = next(
            r for r in records if r.get("attrs", {}).get("stage") == "crawl"
        )
        assert crawl["counters"] == {"fetch.fetches{kind=crl}": 3}

    def test_parent_movement_includes_children(self):
        records = _synthetic(extra_stage=True)
        experiment = next(r for r in records if r["name"] == "experiment")
        assert experiment["counters"] == {
            "fetch.fetches{kind=crl}": 3,
            "fetch.outcomes{kind=crl}{outcome=timeout}": 2,
        }

    def test_owned_counters_subtract_children(self):
        records = _synthetic(extra_stage=True)
        spans = [r for r in records if r["type"] == "span"]
        children = span_children(spans)
        experiment = next(r for r in spans if r["name"] == "experiment")
        # Everything moved inside the stages, so the root owns nothing.
        assert owned_counters(experiment, children) == {}

    def test_no_movement_no_counters_key(self):
        obs = Observability(enabled=True)
        with obs.tracer.span("idle"):
            pass
        (record,) = obs.tracer.records()
        assert "counters" not in record

    def test_flame_table_threads_owned_movement(self):
        tables = flame_table(_synthetic(extra_stage=True))
        frames = {
            frame["name"]: frame for frame in tables[0]["frames"]
        }
        # Both stage spans aggregate into one frame owning all movement.
        assert frames["stage"]["counters"] == {
            "fetch.fetches{kind=crl}": 3,
            "fetch.outcomes{kind=crl}{outcome=timeout}": 2,
        }
        assert frames["fetch"]["counters"] == {}
        assert tables[0]["counters"] == {}


class TestDiffAlignment:
    def test_identical_traces_empty_diff(self):
        diff = diff_traces(_synthetic(), _synthetic())
        assert diff.is_empty
        assert "structurally identical" in render_diff_text(diff)

    def test_added_subtree_reported_at_root_with_counters(self):
        diff = diff_traces(_synthetic(), _synthetic(extra_stage=True))
        assert not diff.is_empty
        (added,) = diff.added
        assert added["path"] == "experiment[experiment=x]/stage[stage=retry]"
        assert added["counters"] == {
            "fetch.outcomes{kind=crl}{outcome=timeout}": 2
        }
        assert not diff.removed
        # The extra stage also moves the experiment's steps and the
        # registry totals -- but no *owned* movement leaks to the root.
        assert all("counters" not in entry for entry in diff.changed)

    def test_removed_is_the_mirror_of_added(self):
        diff = diff_traces(_synthetic(extra_stage=True), _synthetic())
        assert [e["path"] for e in diff.removed] == [
            "experiment[experiment=x]/stage[stage=retry]"
        ]
        assert not diff.added

    def test_volatile_attr_change_is_changed_not_added(self):
        diff = diff_traces(_synthetic(), _synthetic(slow=True))
        assert not diff.added and not diff.removed
        fetch_changes = [e for e in diff.changed if e["name"] == "fetch"]
        assert fetch_changes[0]["attrs"]["latency_ms"] == [5.0, 250.0]

    def test_metric_registry_deltas_reported(self):
        diff = diff_traces(_synthetic(), _synthetic(extra_stage=True))
        (entry,) = diff.metrics
        assert entry["kind"] == "counter"
        assert entry["metric"] == "fetch.outcomes{kind=crl}{outcome=timeout}"
        assert (entry["a"], entry["b"], entry["delta"]) == (0, 2, 2)

    def test_reorder_detected(self):
        def spans(order):
            records = [
                {
                    "type": "span",
                    "id": 0,
                    "parent": None,
                    "name": "experiment",
                    "start": 0,
                    "end": 9,
                    "attrs": {"experiment": "x"},
                }
            ]
            for i, stage in enumerate(order):
                records.append(
                    {
                        "type": "span",
                        "id": i + 1,
                        "parent": 0,
                        "name": "stage",
                        "start": 1 + 2 * i,
                        "end": 2 + 2 * i,
                        "attrs": {"stage": stage},
                    }
                )
            return records

        diff = diff_traces(spans(["a", "b"]), spans(["b", "a"]))
        (entry,) = diff.reordered
        assert entry["path"] == "experiment[experiment=x]"
        assert entry["a"] == ["stage[stage=a]", "stage[stage=b]"]
        assert entry["b"] == ["stage[stage=b]", "stage[stage=a]"]

    def test_occurrence_matching_does_not_cascade(self):
        # Two same-key siblings: inserting one must report exactly one
        # added span, not a cascade of mismatches.
        a = _synthetic(extra_stage=True)
        b = _synthetic(extra_stage=True)
        diff = diff_traces(a, b)
        assert diff.is_empty

    def test_meta_differences_reported_but_not_counted(self):
        a = [{"type": "meta", "seed": 1}] + _synthetic()
        b = [{"type": "meta", "seed": 2}] + _synthetic()
        diff = diff_traces(a, b)
        assert diff.meta == {"seed": [1, 2]}
        assert diff.is_empty

    def test_json_render_round_trips(self):
        diff = diff_traces(_synthetic(), _synthetic(extra_stage=True))
        payload = json.loads(render_diff_json(diff, "a.jsonl", "b.jsonl"))
        assert payload["a"] == "a.jsonl"
        assert payload["empty"] is False
        assert payload["added"][0]["name"] == "stage"


ARGS = ["run", "availability", "--scale", "0.0005", "--seed", "3"]


@pytest.fixture(scope="module")
def fault_traces(tmp_path_factory):
    """Same-seed traces under the none and flaky fault profiles."""
    base = tmp_path_factory.mktemp("diff")
    none_a = base / "none_a.jsonl"
    none_b = base / "none_b.jsonl"
    flaky = base / "flaky.jsonl"
    assert main(ARGS + ["--fault-profile", "none", "--trace-out", str(none_a)]) == 0
    assert main(ARGS + ["--fault-profile", "none", "--trace-out", str(none_b)]) == 0
    assert main(ARGS + ["--fault-profile", "flaky", "--trace-out", str(flaky)]) == 0
    return none_a, none_b, flaky


class TestGuarantee:
    def test_same_seed_same_config_empty_diff_exit_0(self, fault_traces, capsys):
        none_a, none_b, _ = fault_traces
        assert main(["trace", "--diff", str(none_a), str(none_b), "--check"]) == 0
        assert "structurally identical" in capsys.readouterr().out

    def test_none_vs_flaky_nonempty_and_localized(self, fault_traces, capsys):
        none_a, _, flaky = fault_traces
        assert main(["trace", "--diff", str(none_a), str(flaky), "--check"]) == 1
        out = capsys.readouterr().out
        # The behavioural delta is attributed to the fetch path: the
        # added profile leg carries fetch.* counter movement, and the
        # registry deltas name the fetch counters too.
        assert "stage[leg=profile=flaky" in out
        assert "fetch." in out

    def test_api_diff_localizes_to_fetch_path(self, fault_traces):
        none_a, _, flaky = fault_traces
        diff = api.trace.diff(str(none_a), str(flaky))
        assert isinstance(diff, TraceDiff)
        assert not diff.is_empty
        assert diff.meta["fault_profile"] == ["none", "flaky"]
        added_counters = {
            key for entry in diff.added for key in entry["counters"]
        }
        assert any(key.startswith("fetch.") for key in added_counters)
        assert any(
            entry["metric"].startswith("fetch.") for entry in diff.metrics
        )

    def test_diff_is_deterministic(self, fault_traces):
        none_a, _, flaky = fault_traces
        first = api.trace.render_diff(api.trace.diff(str(none_a), str(flaky)))
        second = api.trace.render_diff(api.trace.diff(str(none_a), str(flaky)))
        assert first == second
