"""Tracer unit tests: spans, nesting, segments, and determinism."""

from __future__ import annotations

import json

import pytest

from repro.obs import NULL_OBS, Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullSpan, Tracer


class TestDisabled:
    def test_span_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", certs=3)
        assert isinstance(span, NullSpan)
        assert tracer.records() == []

    def test_event_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.event("hit", kind="crl")
        assert tracer.records() == []

    def test_null_obs_is_disabled(self):
        assert not NULL_OBS.enabled
        assert not NULL_OBS.tracer.enabled
        assert not NULL_OBS.metrics.enabled


class TestSpans:
    def test_nesting_parent_child(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("leaf")
        outer, inner, leaf = tracer.records()
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert leaf["parent"] == inner["id"]
        assert outer["start"] < inner["start"] < leaf["start"]
        assert leaf["end"] <= inner["end"] < outer["end"]

    def test_set_attaches_attributes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", kind="crl") as span:
            span.set("count", 7)
        (record,) = tracer.records()
        assert record["attrs"] == {"kind": "crl", "count": 7}

    def test_non_scalar_attribute_rejected(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(TypeError, match="attribute values"):
            tracer.span("s", bad=[1, 2])

    def test_exception_closes_span_and_tags_error(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        outer, inner = tracer.records()
        # The exception skipped inner's normal exit; closing outer must
        # still stamp inner's end (stack unwinding).
        assert inner["end"] is not None
        assert outer["end"] is not None
        assert outer["attrs"]["error"] == "ValueError"

    def test_event_is_zero_duration(self):
        tracer = Tracer(enabled=True)
        tracer.event("hit")
        (record,) = tracer.records()
        assert record["start"] == record["end"]


class TestSegments:
    def _worker_segment(self, names):
        tracer = Tracer(enabled=True)
        tracer.event("noise")  # pre-mark records must not leak
        mark = tracer.mark()
        for name in names:
            with tracer.span("experiment", experiment=name):
                tracer.event("stage")
        return tracer.export_segment(mark)

    def test_export_rebases_ids_and_steps(self):
        segment = self._worker_segment(["fig2"])
        assert segment[0]["id"] == 0
        assert segment[0]["start"] == 0
        assert segment[0]["parent"] is None
        assert segment[1]["parent"] == 0

    def test_import_renumbers_and_stamps_worker(self):
        parent = Tracer(enabled=True)
        parent.event("local")
        parent.import_segment(self._worker_segment(["fig2"]), worker="w1")
        parent.import_segment(self._worker_segment(["fig3"]), worker="w2")
        records = parent.records()
        ids = [record["id"] for record in records]
        assert ids == list(range(len(records)))
        roots = [r for r in records if r["name"] == "experiment"]
        assert [r["attrs"]["worker"] for r in roots] == ["w1", "w2"]
        starts = [r["start"] for r in records]
        assert starts == sorted(starts)

    def test_records_since_snapshot_is_isolated(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s"):
            snapshot = tracer.records_since(0)
        assert snapshot[0]["end"] is None  # open at snapshot time
        assert tracer.records()[0]["end"] is not None
        snapshot[0]["attrs"]["mutated"] = True
        assert "mutated" not in tracer.records()[0]["attrs"]


class TestJsonl:
    def test_write_jsonl_round_trips_with_header(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("s", kind="crl"):
            pass
        path = tracer.write_jsonl(tmp_path / "t.jsonl", header={"seed": 1})
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"type": "meta", "seed": 1}
        assert json.loads(lines[1])["name"] == "s"

    def test_same_work_same_bytes(self, tmp_path):
        def run(path):
            tracer = Tracer(enabled=True)
            for i in range(3):
                with tracer.span("outer", i=i):
                    tracer.event("inner")
            return tracer.write_jsonl(path).read_bytes()

        assert run(tmp_path / "a.jsonl") == run(tmp_path / "b.jsonl")


class TestCounterMarks:
    """Tracers wired to a registry stamp exact per-span counter movement."""

    def _wired(self):
        registry = MetricsRegistry(enabled=True)
        tracer = Tracer(enabled=True, counter_marks=registry.counter_snapshot)
        return tracer, registry

    def test_movement_stamped_on_close(self):
        tracer, registry = self._wired()
        with tracer.span("work"):
            registry.counter("fetches", kind="crl").inc(2)
        (record,) = tracer.records()
        assert record["counters"] == {"fetches{kind=crl}": 2}

    def test_no_movement_omits_key(self):
        tracer, registry = self._wired()
        with tracer.span("idle"):
            pass
        (record,) = tracer.records()
        assert "counters" not in record

    def test_marks_nest_without_double_counting(self):
        tracer, registry = self._wired()
        with tracer.span("outer"):
            registry.counter("a").inc(1)
            with tracer.span("inner"):
                registry.counter("a").inc(10)
        outer, inner = tracer.records()
        assert inner["counters"] == {"a": 10}
        # The parent's mark spans the child's movement too; ownership is
        # derived at render time (repro.obs.report.owned_counters).
        assert outer["counters"] == {"a": 11}

    def test_unwired_tracer_never_stamps(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work"):
            pass
        (record,) = tracer.records()
        assert "counters" not in record

    def test_records_since_copies_counters(self):
        tracer, registry = self._wired()
        with tracer.span("work"):
            registry.counter("a").inc()
        snapshot = tracer.records_since(0)
        snapshot[0]["counters"]["a"] = 999
        assert tracer.records()[0]["counters"] == {"a": 1}


class TestObservability:
    def test_export_records_spans_then_metrics(self):
        obs = Observability(enabled=True)
        obs.metrics.counter("c").inc()
        obs.tracer.event("e")
        records = obs.export_records()
        assert [r["type"] for r in records] == ["span", "metric"]

    def test_observability_wires_marks(self):
        obs = Observability(enabled=True)
        with obs.tracer.span("work"):
            obs.metrics.counter("c").inc(3)
        (record,) = obs.tracer.records()
        assert record["counters"] == {"c": 3}
