"""Property tests (derandomized hypothesis) locking down the invariants
the observability layer reports on.

Three families:

* **FetchStats accounting** -- however the fault dice land, the running
  totals must balance: every logical fetch is exactly one success or
  failure, failed attempts still charge latency, and the cumulative
  totals only ever grow.
* **Metrics wiring** -- the counters the fetcher publishes must agree
  with its own ``FetchStats``, and registry merging must be order
  independent.
* **Span trees** -- any program of opens/closes/events yields a
  well-formed trace: dense ids, existing parents, properly nested
  strictly-increasing steps.

All ``@given`` tests run under the ``repro`` derandomized hypothesis
profile (tests/conftest.py), so the whole suite stays reproducible; the
RPR011 lint rule enforces this for any future hypothesis test.
"""

from __future__ import annotations

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ca.authority import CertificateAuthority
from repro.net.cache import ClientCache
from repro.net.endpoints import CrlEndpoint, OcspEndpoint
from repro.net.faults import FaultKind, FaultPlan, FaultSpec
from repro.net.fetcher import NetworkFetcher, RetryPolicy
from repro.net.transport import FailureMode, Network
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

UTC = datetime.timezone.utc
NOW = datetime.datetime(2015, 3, 1, 12, 0, tzinfo=UTC)
ZERO = datetime.timedelta(0)

_CA = CertificateAuthority.create_root(
    "Property CA",
    "property-ca",
    datetime.datetime(2014, 1, 1, tzinfo=UTC),
    datetime.datetime(2016, 1, 1, tzinfo=UTC),
    crl_base_url="http://crl.property.example",
    ocsp_url="http://ocsp.property.example/q",
)
_CRL_URL = _CA.crl_publisher.urls[0]
_OCSP_URL = "http://ocsp.property.example/q"
_MISSING_URL = "http://missing.property.example/crl"

#: one drawn step of the fetch program.
_STEP = st.sampled_from(("crl", "ocsp", "missing"))


def _fetcher(probability: float, fault_seed: int, aggressive: bool, obs=None):
    plan = None
    if probability > 0:
        plan = FaultPlan(seed=fault_seed)
        plan.add("*", FaultSpec(FaultKind.FLAKY, probability=probability * 0.6))
        plan.add(
            "*",
            FaultSpec(
                FaultKind.FLAKY,
                probability=probability * 0.4,
                mode=FailureMode.HTTP_404,
            ),
        )
    network = Network(faults=plan, timeout=datetime.timedelta(seconds=5))
    network.register(
        _CRL_URL,
        CrlEndpoint(lambda at: _CA.crl_publisher.encode(_CRL_URL, at).to_der()),
    )
    network.register(_OCSP_URL, OcspEndpoint(_CA.ocsp_responder.respond))
    policy = RetryPolicy.aggressive() if aggressive else RetryPolicy.no_retry()
    return NetworkFetcher(
        network,
        clock_now=lambda: NOW,
        cache=ClientCache(),
        retry_policy=policy,
        seed=fault_seed,
        obs=obs,
    )


def _run_program(fetcher, program):
    for step in program:
        if step == "crl":
            fetcher.fetch_crl_result(_CRL_URL)
        elif step == "ocsp":
            fetcher.fetch_ocsp_result(_OCSP_URL, _CA.issuer_key_hash, 1)
        else:
            fetcher.fetch_crl_result(_MISSING_URL)


class TestFetchStatsInvariants:
    @settings(derandomize=True, max_examples=25, deadline=None)
    @given(
        probability=st.floats(min_value=0.0, max_value=0.9),
        fault_seed=st.integers(min_value=0, max_value=2**16),
        aggressive=st.booleans(),
        program=st.lists(_STEP, min_size=1, max_size=12),
    )
    def test_totals_balance(self, probability, fault_seed, aggressive, program):
        fetcher = _fetcher(probability, fault_seed, aggressive)
        _run_program(fetcher, program)
        stats = fetcher.stats
        # Every logical fetch resolves to exactly one success or failure;
        # breaker rejections and negative-cache hits are refusals to
        # fetch, not fetches.
        assert stats.fetches == stats.successes + stats.failures
        assert stats.attempts >= stats.successes
        assert stats.attempts <= stats.fetches * fetcher.retry_policy.max_attempts
        assert stats.retries <= stats.attempts
        for name, value in stats.as_dict().items():
            assert value >= 0, name
        assert stats.latency_total >= ZERO
        assert stats.backoff_total >= ZERO

    @settings(derandomize=True, max_examples=15, deadline=None)
    @given(
        probability=st.floats(min_value=0.0, max_value=0.9),
        fault_seed=st.integers(min_value=0, max_value=2**16),
        program=st.lists(_STEP, min_size=1, max_size=10),
    )
    def test_totals_are_monotone(self, probability, fault_seed, program):
        fetcher = _fetcher(probability, fault_seed, aggressive=True)
        previous = fetcher.stats.as_dict()
        for step in program:
            _run_program(fetcher, [step])
            current = fetcher.stats.as_dict()
            for name, value in current.items():
                assert value >= previous[name], name
            previous = current


class TestMetricsAgreeWithStats:
    @settings(derandomize=True, max_examples=15, deadline=None)
    @given(
        probability=st.floats(min_value=0.0, max_value=0.9),
        fault_seed=st.integers(min_value=0, max_value=2**16),
        program=st.lists(_STEP, min_size=1, max_size=10),
    )
    def test_fetch_counters_match(self, probability, fault_seed, program):
        obs = Observability(enabled=True)
        fetcher = _fetcher(probability, fault_seed, aggressive=True, obs=obs)
        _run_program(fetcher, program)
        stats = fetcher.stats
        by_name: dict[str, float] = {}
        for record in obs.metrics.export():
            if record["kind"] == "counter":
                by_name[record["name"]] = (
                    by_name.get(record["name"], 0) + record["value"]
                )
        assert by_name.get("fetch.fetches", 0) == stats.fetches
        assert by_name.get("fetch.attempts", 0) == stats.attempts
        assert by_name.get("fetch.bytes_downloaded", 0) == stats.bytes_downloaded
        assert (
            by_name.get("fetch.negative_cache_hits", 0)
            == stats.negative_cache_hits
        )

    @settings(derandomize=True, max_examples=20, deadline=None)
    @given(
        increments=st.lists(
            st.tuples(
                st.sampled_from(("a", "b", "c")),
                st.integers(min_value=0, max_value=100),
            ),
            max_size=20,
        )
    )
    def test_merge_order_independent(self, increments):
        half = len(increments) // 2
        exports = []
        for chunk in (increments[:half], increments[half:]):
            registry = MetricsRegistry(enabled=True)
            for name, amount in chunk:
                registry.counter(name).inc(amount)
                registry.histogram("h", series=name).observe(amount)
            exports.append(registry.export())
        forward = MetricsRegistry(enabled=True)
        backward = MetricsRegistry(enabled=True)
        for export in exports:
            forward.merge(export)
        for export in reversed(exports):
            backward.merge(export)
        assert forward.export() == backward.export()


#: a nesting program: "(" opens a span, ")" closes the innermost open
#: span (ignored when nothing is open), "." records an event.
_PROGRAM = st.lists(st.sampled_from("()."), max_size=40)


def _execute(program) -> Tracer:
    tracer = Tracer(enabled=True)
    open_spans = []
    for op in program:
        if op == "(":
            span = tracer.span("s", depth=len(open_spans))
            span.__enter__()
            open_spans.append(span)
        elif op == ")" and open_spans:
            open_spans.pop().__exit__(None, None, None)
        elif op == ".":
            tracer.event("e")
    while open_spans:
        open_spans.pop().__exit__(None, None, None)
    return tracer


class TestSpanTreeWellFormed:
    @settings(derandomize=True, max_examples=50, deadline=None)
    @given(program=_PROGRAM)
    def test_any_program_yields_well_formed_tree(self, program):
        records = _execute(program).records()
        by_id = {record["id"]: record for record in records}
        assert sorted(by_id) == list(range(len(records)))  # dense ids
        steps = []
        for record in records:
            assert record["end"] is not None  # everything was closed
            assert record["start"] <= record["end"]
            steps.append(record["start"])
            if record["start"] != record["end"]:
                steps.append(record["end"])
            parent_id = record["parent"]
            if parent_id is not None:
                parent = by_id[parent_id]
                assert parent_id < record["id"]
                # Proper nesting: the child's interval sits inside its
                # parent's.
                assert parent["start"] < record["start"]
                assert record["end"] <= parent["end"]
        # The step counter ticks exactly once per span boundary/event.
        assert sorted(steps) == list(range(len(steps)))
        starts = [record["start"] for record in records]
        assert starts == sorted(starts)  # trace order == start order
