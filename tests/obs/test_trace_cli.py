"""End-to-end: ``run --trace-out`` writes a trace the ``trace`` command
can roll up, byte-identically per seed."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.obs.report import (
    flame_table,
    load_records,
    render_json,
    render_text,
    summarize,
    top_spans,
)

ARGS = ["run", "fig2", "--scale", "0.0005", "--seed", "3"]


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    assert main(ARGS + ["--trace-out", str(path)]) == 0
    return path


class TestTraceOut:
    def test_trace_is_byte_identical_per_seed(self, trace_path, tmp_path):
        again = tmp_path / "again.jsonl"
        assert main(ARGS + ["--trace-out", str(again)]) == 0
        assert again.read_bytes() == trace_path.read_bytes()

    def test_meta_header_records_the_invocation(self, trace_path):
        meta = json.loads(trace_path.read_text().splitlines()[0])
        assert meta["type"] == "meta"
        assert meta["experiment"] == "fig2"
        assert meta["scale"] == pytest.approx(0.0005)
        assert meta["seed"] == 3
        assert meta["fault_profile"] == "none"

    def test_stdout_report_unchanged_by_tracing(self, trace_path, tmp_path, capsys):
        assert main(ARGS) == 0
        untraced = capsys.readouterr().out
        assert main(ARGS + ["--trace-out", str(tmp_path / "t.jsonl")]) == 0
        traced = capsys.readouterr().out
        assert traced == untraced


class TestTraceCommand:
    def test_text_report(self, trace_path, capsys):
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "per-experiment spans" in out
        assert "fig2" in out
        assert "top spans by steps" in out
        assert "flame-table" in out

    def test_json_report(self, trace_path, capsys):
        assert main(["trace", str(trace_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["experiments"]["fig2"]["outcome"] == "ok"
        assert payload["top_spans"]
        assert payload["experiments"][0]["experiment"] == "fig2"

    def test_missing_file_is_a_clean_error(self, capsys):
        assert main(["trace", "/nonexistent/trace.jsonl"]) == 2
        assert "trace.jsonl" in capsys.readouterr().err

    def test_garbage_line_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\nnot json\n')
        assert main(["trace", str(bad)]) == 2
        assert "not JSON" in capsys.readouterr().err


class TestReportFunctions:
    def test_summarize_counts_spans_and_counters(self, trace_path):
        records = load_records(trace_path)
        summary = summarize(records)
        assert summary["spans"] >= 2
        assert summary["open_spans"] == 0
        assert summary["meta"]["experiment"] == "fig2"
        assert summary["experiments"]["fig2"]["outcome"] == "ok"

    def test_renders_are_deterministic(self, trace_path):
        records = load_records(trace_path)
        assert render_text(records) == render_text(records)
        assert render_json(records) == render_json(records)

    def test_top_spans_ranked_by_steps(self, trace_path):
        ranked = top_spans(load_records(trace_path))
        steps = [group["steps"] for group in ranked]
        assert steps == sorted(steps, reverse=True)

    def test_flame_table_has_experiment_root(self, trace_path):
        tables = flame_table(load_records(trace_path))
        assert tables[0]["experiment"] == "fig2"
        assert all(frame["depth"] >= 1 for frame in tables[0]["frames"])
