"""Parallel ``run_all`` must reproduce the sequential results exactly,
and the artifact cache must round-trip ecosystems keyed on calibration."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.pipeline import MeasurementStudy
from repro.experiments.runner import ALL_EXPERIMENTS, run_all
from repro.scan.calibration import Calibration
from repro.scan.datastore import ArtifactCache, calibration_digest


class TestParallelRunner:
    def test_parallel_equals_sequential(self, calibration):
        # Both legs start from fresh studies: the stapling scanner's RNG
        # is stateful, so a shared session study that already served
        # other tests would make the sequential leg diverge.
        sequential = run_all(MeasurementStudy(calibration=calibration))
        parallel = run_all(MeasurementStudy(calibration=calibration), parallel=2)
        assert len(sequential) == len(parallel) == len(ALL_EXPERIMENTS)
        for seq, par in zip(sequential, parallel):
            assert seq.experiment_id == par.experiment_id
            assert seq.data == par.data
            assert seq.rendered == par.rendered
            assert seq.comparisons == par.comparisons

    def test_parallel_one_falls_back_to_sequential(self, study):
        # parallel=1 must not pay process-pool overhead.
        results = run_all(study, parallel=1)
        assert [r.experiment_id for r in results] == list(ALL_EXPERIMENTS)


class TestArtifactCache:
    def test_roundtrip(self, tmp_path):
        calibration = Calibration(scale=0.002)
        cache = ArtifactCache(tmp_path)
        assert cache.load_ecosystem(calibration) is None

        study = MeasurementStudy(calibration=calibration, cache_dir=tmp_path)
        ecosystem = study.ecosystem
        assert cache.ecosystem_path(calibration).exists()

        reloaded = cache.load_ecosystem(calibration)
        assert reloaded is not None
        assert len(reloaded.leaves) == len(ecosystem.leaves)
        assert [c.url for c in reloaded.crls] == [c.url for c in ecosystem.crls]
        day = calibration.crawl_end
        assert [c.series.entry_count(day) for c in reloaded.crls] == [
            c.series.entry_count(day) for c in ecosystem.crls
        ]

    def test_digest_covers_every_field(self):
        base = Calibration(scale=0.002)
        assert calibration_digest(base) == calibration_digest(Calibration(scale=0.002))
        assert calibration_digest(base) != calibration_digest(
            Calibration(scale=0.002, seed=1)
        )
        # Non-scale/seed fields must also miss the cache.
        field = next(
            f.name
            for f in dataclasses.fields(Calibration)
            if f.name not in ("scale", "seed") and isinstance(f.default, int)
        )
        changed = dataclasses.replace(base, **{field: getattr(base, field) + 1})
        assert calibration_digest(base) != calibration_digest(changed)

    @pytest.mark.parametrize(
        "garbage",
        [b"not a pickle", b"garbage\n", b"", b"\x80\x05truncated"],
    )
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        # pickle raises arbitrary exception types on corrupt input; any
        # unreadable entry must read as a miss, never an error.
        calibration = Calibration(scale=0.002)
        cache = ArtifactCache(tmp_path)
        path = cache.ecosystem_path(calibration)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(garbage)
        assert cache.load_ecosystem(calibration) is None

    def test_cache_dir_is_a_file_reads_as_miss(self, tmp_path):
        target = tmp_path / "notadir"
        target.write_text("occupied")
        cache = ArtifactCache(target)
        assert cache.load_ecosystem(Calibration(scale=0.002)) is None
