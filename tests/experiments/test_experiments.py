"""Every experiment must run and preserve the paper's shape.

This is the reproduction's acceptance suite: each experiment declares its
own paper-vs-measured comparisons, and every one of them must hold.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ALL_EXPERIMENTS, run_all, run_experiment

SCAN_EXPERIMENTS = [eid for eid in ALL_EXPERIMENTS if eid != "table2"]


@pytest.fixture(scope="module")
def results(study):
    # table2 is covered exhaustively in tests/browsers/test_table2.py and
    # costs ~7 s; the scan-side experiments share the session study.
    return {eid: run_experiment(eid, study) for eid in SCAN_EXPERIMENTS}


class TestExperimentRegistry:
    def test_all_figures_and_tables_present(self):
        assert set(ALL_EXPERIMENTS) == {
            "section3",
            "section42",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "table1",
            "table2",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "availability",
            "mechanisms",
            "serving",
        }

    def test_unknown_experiment_raises(self, study):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99", study)


@pytest.mark.parametrize("experiment_id", SCAN_EXPERIMENTS)
class TestShapeHolds:
    def test_all_comparisons_hold(self, results, experiment_id):
        result = results[experiment_id]
        failures = [c for c in result.comparisons if not c.shape_holds]
        detail = "; ".join(
            f"{c.metric}: paper={c.paper} measured={c.measured}" for c in failures
        )
        assert not failures, detail

    def test_renders_nonempty(self, results, experiment_id):
        result = results[experiment_id]
        text = result.render()
        assert result.experiment_id in text
        assert len(text) > 100

    def test_has_comparisons(self, results, experiment_id):
        assert results[experiment_id].comparisons

    def test_comparison_table_renders(self, results, experiment_id):
        table = results[experiment_id].comparison_table()
        assert "paper" in table and "measured" in table
