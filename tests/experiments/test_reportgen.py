"""EXPERIMENTS.md generator smoke test."""

from __future__ import annotations

import sys

from repro.experiments import reportgen


def test_reportgen_produces_full_report(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["reportgen", "0.0005"])
    reportgen.main()
    out = capsys.readouterr().out
    assert out.startswith("# EXPERIMENTS")
    # Every experiment section present.
    for experiment_id in (
        "section3",
        "section42",
        "fig2",
        "fig6",
        "table1",
        "table2",
        "fig11",
    ):
        assert f"## {experiment_id}:" in out
    # Markdown comparison tables rendered.
    assert "| metric | paper | measured | shape holds |" in out
