"""Golden-report lockdown: per-seed digests of every experiment render.

The whole study is deterministic for a fixed calibration, so the exact
bytes of each experiment's report are part of the contract: any change
to them -- a refactor that perturbs an RNG draw, a formatting tweak, an
accidental float reorder -- must show up as a reviewed diff of
``tests/experiments/golden/``, not slip through silently.

When a change is intentional, regenerate with::

    PYTHONPATH=src python scripts/update_golden.py

The golden study pins ``fault_profile="none"`` so the digests hold under
CI's ``REPRO_FAULT_PROFILE`` matrix, and builds its own study (never the
session fixture): experiments that consume the study's stateful RNG
would otherwise see a different stream depending on test order.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import api
from repro.experiments.runner import ALL_EXPERIMENTS
from repro.mechanisms import mechanism_names

GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "reports-scale0.002-seed20151028.json"
)
MECHANISMS_GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "mechanisms-scale0.002-seed20151028.json"
)
SERVING_GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "serving-scale0.002-seed20151028.json"
)


def compute_digests() -> dict[str, str]:
    """One sequential run of everything at the pinned calibration.

    Delegates to :func:`repro.api.study.golden_digests`, the same call
    ``scripts/update_golden.py`` uses to regenerate the file.
    """
    return api.study.golden_digests(
        scale=0.002, seed=20151028, fault_profile="none"
    )


def golden_payload(digests: dict[str, str]) -> dict:
    return {
        "scale": 0.002,
        "seed": 20151028,
        "fault_profile": "none",
        "digests": digests,
    }


# Tolerate a missing file at import so scripts/update_golden.py can be
# used to create it in the first place; the tests then fail loudly.
def _load(path: Path) -> dict:
    if path.exists():
        return json.loads(path.read_text(encoding="utf-8"))
    return {"scale": None, "seed": None, "fault_profile": None, "digests": {}}


_GOLDEN = _load(GOLDEN_PATH)
_MECHANISMS_GOLDEN = _load(MECHANISMS_GOLDEN_PATH)
_SERVING_GOLDEN = _load(SERVING_GOLDEN_PATH)


@pytest.fixture(scope="module")
def digests() -> dict[str, str]:
    return compute_digests()


@pytest.fixture(scope="module")
def mech_digests() -> dict[str, str]:
    return api.study.mechanism_digests(
        scale=0.002, seed=20151028, fault_profile="none"
    )


@pytest.fixture(scope="module")
def serving_digests() -> dict[str, str]:
    return api.serve.serving_digests(
        scale=0.002, seed=20151028, fault_profile="none"
    )


def test_golden_covers_every_experiment():
    assert sorted(_GOLDEN["digests"]) == sorted(ALL_EXPERIMENTS)


def test_golden_pins_the_calibration():
    assert _GOLDEN["scale"] == pytest.approx(0.002)
    assert _GOLDEN["seed"] == 20151028
    assert _GOLDEN["fault_profile"] == "none"


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_report_matches_golden(digests, experiment_id):
    assert digests[experiment_id] == _GOLDEN["digests"][experiment_id], (
        f"{experiment_id}'s report changed; if intentional, regenerate "
        "with: PYTHONPATH=src python scripts/update_golden.py"
    )


def test_mechanisms_golden_covers_every_registered_mechanism():
    """One digest per registered mechanism: registering a new mechanism
    (or dropping one) must regenerate the mechanisms golden."""
    assert sorted(_MECHANISMS_GOLDEN["digests"]) == sorted(mechanism_names())


def test_mechanisms_golden_pins_the_calibration():
    assert _MECHANISMS_GOLDEN["scale"] == pytest.approx(0.002)
    assert _MECHANISMS_GOLDEN["seed"] == 20151028
    assert _MECHANISMS_GOLDEN["fault_profile"] == "none"


@pytest.mark.parametrize("name", sorted(mechanism_names()))
def test_mechanism_block_matches_golden(mech_digests, name):
    """Per-mechanism lockdown: a refactor of one mechanism that changes
    another's sweep block bytes is caught by name, not as one opaque
    whole-report digest."""
    assert mech_digests[name] == _MECHANISMS_GOLDEN["digests"][name], (
        f"{name}'s sweep block changed; if intentional, regenerate "
        "with: PYTHONPATH=src python scripts/update_golden.py"
    )


def test_serving_golden_covers_every_registered_mechanism():
    assert sorted(_SERVING_GOLDEN["digests"]) == sorted(mechanism_names())


def test_serving_golden_pins_the_calibration():
    assert _SERVING_GOLDEN["scale"] == pytest.approx(0.002)
    assert _SERVING_GOLDEN["seed"] == 20151028
    assert _SERVING_GOLDEN["fault_profile"] == "none"


@pytest.mark.parametrize("name", sorted(mechanism_names()))
def test_serving_block_matches_golden(serving_digests, name):
    """Per-mechanism serving lockdown: the fleet, caches, and transport
    behind one mechanism's serving report are digest-visible by name
    (docs/SERVING.md's determinism contract)."""
    assert serving_digests[name] == _SERVING_GOLDEN["digests"][name], (
        f"{name}'s serving block changed; if intentional, regenerate "
        "with: PYTHONPATH=src python scripts/update_golden.py"
    )
