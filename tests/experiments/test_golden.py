"""Golden-report lockdown: per-seed digests of every experiment render.

The whole study is deterministic for a fixed calibration, so the exact
bytes of each experiment's report are part of the contract: any change
to them -- a refactor that perturbs an RNG draw, a formatting tweak, an
accidental float reorder -- must show up as a reviewed diff of
``tests/experiments/golden/``, not slip through silently.

When a change is intentional, regenerate with::

    PYTHONPATH=src python scripts/update_golden.py

The golden study pins ``fault_profile="none"`` so the digests hold under
CI's ``REPRO_FAULT_PROFILE`` matrix, and builds its own study (never the
session fixture): experiments that consume the study's stateful RNG
would otherwise see a different stream depending on test order.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import api
from repro.experiments.runner import ALL_EXPERIMENTS

GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "reports-scale0.002-seed20151028.json"
)


def compute_digests() -> dict[str, str]:
    """One sequential run of everything at the pinned calibration.

    Delegates to :func:`repro.api.golden_digests`, the same call
    ``scripts/update_golden.py`` uses to regenerate the file.
    """
    return api.golden_digests(scale=0.002, seed=20151028, fault_profile="none")


def golden_payload(digests: dict[str, str]) -> dict:
    return {
        "scale": 0.002,
        "seed": 20151028,
        "fault_profile": "none",
        "digests": digests,
    }


# Tolerate a missing file at import so scripts/update_golden.py can be
# used to create it in the first place; the tests then fail loudly.
_GOLDEN = (
    json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    if GOLDEN_PATH.exists()
    else {"scale": None, "seed": None, "fault_profile": None, "digests": {}}
)


@pytest.fixture(scope="module")
def digests() -> dict[str, str]:
    return compute_digests()


def test_golden_covers_every_experiment():
    assert sorted(_GOLDEN["digests"]) == sorted(ALL_EXPERIMENTS)


def test_golden_pins_the_calibration():
    assert _GOLDEN["scale"] == pytest.approx(0.002)
    assert _GOLDEN["seed"] == 20151028
    assert _GOLDEN["fault_profile"] == "none"


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_report_matches_golden(digests, experiment_id):
    assert digests[experiment_id] == _GOLDEN["digests"][experiment_id], (
        f"{experiment_id}'s report changed; if intentional, regenerate "
        "with: PYTHONPATH=src python scripts/update_golden.py"
    )
