"""run_all error isolation and fault-seed determinism.

Acceptance criteria for the fault-injection PR: an injected crash in one
experiment must not abort the rest, and two runs under the same fault
seed and profile must produce byte-identical reports.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import MeasurementStudy
from repro.experiments import availability
from repro.experiments.common import failure_result
from repro.experiments.runner import (
    ALL_EXPERIMENTS,
    _run_isolated,
    run_all,
    run_experiment,
)
from repro.obs import Observability
from repro.scan.calibration import Calibration


@pytest.fixture(scope="module")
def small_study():
    # A dedicated small study: run_all consumes the stapling scanner's
    # stateful RNG, so the session-scoped study must not be used here.
    return MeasurementStudy(scale=0.0005)


class TestErrorIsolation:
    def test_crash_is_captured_not_propagated(self, small_study, monkeypatch):
        # Inject a crash into one experiment; the sweep must complete and
        # report the failure as a structured record.
        def boom(_study):
            raise RuntimeError("injected crash")

        monkeypatch.setattr(ALL_EXPERIMENTS["fig3"], "run", boom)
        results = run_all(small_study)
        assert [r.experiment_id for r in results] == list(ALL_EXPERIMENTS)
        by_id = {r.experiment_id: r for r in results}
        failed = by_id["fig3"]
        assert not failed.ok
        assert failed.error["type"] == "RuntimeError"
        assert failed.error["message"] == "injected crash"
        assert "injected crash" in failed.error["traceback"]
        assert "EXPERIMENT FAILED" in failed.render()
        others = [r for r in results if r.experiment_id != "fig3"]
        assert all(r.ok for r in others)

    def test_isolation_can_be_disabled(self, small_study, monkeypatch):
        def boom(_study):
            raise RuntimeError("injected crash")

        monkeypatch.setattr(ALL_EXPERIMENTS["section3"], "run", boom)
        with pytest.raises(RuntimeError):
            run_all(small_study, isolate_errors=False)

    def test_failure_result_shape(self):
        record = failure_result("figX", "Title", ValueError("nope"))
        assert record.experiment_id == "figX"
        assert not record.ok
        assert record.error["type"] == "ValueError"
        assert record.data["error"] is record.error
        assert "partial_trace" not in record.error  # only when traced

    def test_partial_trace_attached_when_tracing(self, monkeypatch):
        # A traced run must ship the failing experiment's spans with the
        # failure record: the open `experiment` span and whatever stages
        # completed mark exactly where the crash happened.
        def boom(study):
            with study.obs.tracer.span("stage", stage="doomed"):
                raise RuntimeError("injected crash")

        monkeypatch.setattr(ALL_EXPERIMENTS["table2"], "run", boom)
        obs = Observability(enabled=True)
        study = MeasurementStudy(scale=0.0005, obs=obs)
        result = _run_isolated("table2", study)
        assert not result.ok
        partial = result.error["partial_trace"]
        names = [span["name"] for span in partial]
        assert names == ["experiment", "stage"]
        experiment_span, stage_span = partial
        assert experiment_span["attrs"]["outcome"] == "error"
        assert experiment_span["end"] is None  # open at capture time
        assert stage_span["attrs"]["error"] == "RuntimeError"
        # The tracer's own log still closes the span afterwards.
        closed = [
            span
            for span in obs.tracer.records()
            if span["name"] == "experiment"
        ]
        assert closed[0]["end"] is not None

    def test_no_partial_trace_when_tracing_disabled(self, monkeypatch):
        def boom(_study):
            raise RuntimeError("injected crash")

        monkeypatch.setattr(ALL_EXPERIMENTS["table2"], "run", boom)
        study = MeasurementStudy(scale=0.0005)
        result = _run_isolated("table2", study)
        assert not result.ok
        assert "partial_trace" not in result.error


class TestFaultDeterminism:
    def test_same_fault_seed_byte_identical_availability(self):
        def report(seed):
            study = MeasurementStudy(
                scale=0.0005, fault_profile="chaos", fault_seed=seed
            )
            return run_experiment("availability", study).render()

        assert report(20150701) == report(20150701)
        assert report(20150701) != report(99)

    def test_chaos_run_all_byte_identical(self):
        # Two consecutive full sweeps under the chaos profile with a
        # pinned fault seed must render byte-identically.
        calibration = Calibration(scale=0.0005)

        def full_report():
            study = MeasurementStudy(
                calibration=calibration,
                fault_profile="chaos",
                fault_seed=20150701,
            )
            return "\n\n".join(r.render() for r in run_all(study))

        assert full_report() == full_report()

    def test_injected_failures_are_accounted(self):
        # Every injected failure must show up in the counters: nothing is
        # silently free.
        study = MeasurementStudy(
            scale=0.0005, fault_profile="chaos", fault_seed=20150701
        )
        result = run_experiment("availability", study)
        faulted_cells = [
            leg
            for key, leg in result.data["cells"].items()
            if not key.startswith("0.0/")
        ]
        assert any(
            leg["stats"]["timeouts"] + leg["stats"]["http_errors"] > 0
            for leg in faulted_cells
        )
        for leg in faulted_cells:
            failures = (
                leg["stats"]["timeouts"]
                + leg["stats"]["dns_failures"]
                + leg["stats"]["http_errors"]
                + leg["stats"]["parse_errors"]
            )
            if failures:
                # Failed attempts cost latency beyond the clean baseline
                # (clean legs pay ~40 ms RTT per connection).
                assert leg["mean_latency_ms"] > 50

    def test_profile_leg_present_under_profile(self):
        study = MeasurementStudy(
            scale=0.0005, fault_profile="flaky", fault_seed=3
        )
        result = availability.run(study)
        assert result.data["profile"] is not None
        assert result.data["fault_profile"] == "flaky"

    def test_no_profile_leg_by_default(self):
        study = MeasurementStudy(scale=0.0005, fault_profile="none")
        result = availability.run(study)
        assert result.data["profile"] is None
