"""End-to-end networked CRL fetch over ecosystem data.

The crawler module reads the generator's ground truth directly for
speed; this test verifies the equivalence the design relies on -- that a
client fetching an ecosystem CRL *over the simulated network* sees
exactly the entries and sizes the crawler reports.
"""

from __future__ import annotations

import datetime

import pytest

from repro.net.cache import ClientCache
from repro.net.endpoints import StaticEndpoint
from repro.net.fetcher import NetworkFetcher
from repro.net.transport import Network


@pytest.fixture(scope="module")
def small_crl(ecosystem):
    """A fully materialised (no hidden bulk) ecosystem CRL."""
    return next(
        crl
        for crl in ecosystem.crls
        if crl.hidden is None and len(crl.entries) > 3
    )


class TestNetworkedCrawl:
    def test_wire_fetch_matches_ground_truth(self, ecosystem, small_crl):
        day = ecosystem.calibration.measurement_end
        at = datetime.datetime(day.year, day.month, day.day, 13, tzinfo=datetime.timezone.utc)

        state = ecosystem.brands[small_crl.brand]
        issuer_ca = next(
            ca
            for ca, record in zip(state.intermediate_cas, state.intermediate_records)
            if record.intermediate_id == small_crl.intermediate_id
        )
        wire = small_crl.to_crl(day, issuer_ca.keys)

        network = Network()
        network.register(small_crl.url, StaticEndpoint(wire.to_der()))
        fetcher = NetworkFetcher(network, clock_now=lambda: at, cache=ClientCache())

        fetched = fetcher.fetch_crl(small_crl.url)
        assert fetched is not None
        # Same entries as the crawler's ground-truth view...
        expected = {
            entry.serial_number for entry in small_crl.visible_entries(day)
        }
        assert fetched.serial_numbers() == expected
        # ...the same byte size the size model reports...
        assert fetched.encoded_size == small_crl.size_bytes(day)
        # ...and a valid signature from the issuing intermediate.
        assert fetched.verify_signature(issuer_ca.keys.public_key)

    def test_revoked_leaf_detectable_over_the_wire(self, ecosystem, small_crl):
        day = ecosystem.calibration.measurement_end
        at = datetime.datetime(day.year, day.month, day.day, 13, tzinfo=datetime.timezone.utc)
        observed = next(
            (e for e in small_crl.visible_entries(day) if e.cert_id is not None),
            None,
        )
        if observed is None:
            pytest.skip("no scan-observed revocation on this CRL")
        state = ecosystem.brands[small_crl.brand]
        issuer_ca = next(
            ca
            for ca, record in zip(state.intermediate_cas, state.intermediate_records)
            if record.intermediate_id == small_crl.intermediate_id
        )
        wire = small_crl.to_crl(day, issuer_ca.keys)
        network = Network()
        network.register(small_crl.url, StaticEndpoint(wire.to_der()))
        fetcher = NetworkFetcher(network, clock_now=lambda: at)
        fetched = fetcher.fetch_crl(small_crl.url)
        assert fetched.is_revoked(observed.serial_number)
