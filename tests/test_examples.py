"""Example scripts must keep running against the public API."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["quickstart.py", "0.0005"])
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "Finding 1" in out and "Finding 4" in out
        assert "fig2" in out

    def test_bandwidth_planner_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["crl_bandwidth_planner.py", "2000", "0.08"])
        _load("crl_bandwidth_planner").main()
        out = capsys.readouterr().out
        assert "single CRL" in out
        assert "OCSP staple" in out

    def test_all_examples_have_mains(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 3  # deliverable floor; we ship six
        for script in scripts:
            text = script.read_text()
            assert "def main()" in text, script.name
            assert '__name__ == "__main__"' in text, script.name
