"""Shared fixtures.

The heavyweight artefacts (ecosystem, study, CRLSet history) are
session-scoped: they are deterministic, read-only for tests, and take a
second or two each to build.
"""

from __future__ import annotations

import datetime

import pytest
from hypothesis import settings

from repro import MeasurementStudy
from repro.scan.calibration import Calibration

# Derandomize every hypothesis test in the suite: examples are derived
# from the test function, not a per-run entropy source, so two runs
# execute identical example streams.  The RPR011 lint rule treats this
# profile as covering the whole tests/ tree (docs/STATIC_ANALYSIS.md).
settings.register_profile("repro", derandomize=True)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def calibration() -> Calibration:
    return Calibration(scale=0.002)


@pytest.fixture(scope="session")
def study(calibration) -> MeasurementStudy:
    return MeasurementStudy(calibration=calibration)


@pytest.fixture(scope="session")
def ecosystem(study):
    return study.ecosystem


@pytest.fixture(scope="session")
def crlset_history(study):
    return study.crlset_history


@pytest.fixture(scope="session")
def measurement_end(calibration) -> datetime.date:
    return calibration.measurement_end


@pytest.fixture()
def utc_now() -> datetime.datetime:
    return datetime.datetime(2015, 3, 31, 12, 0, tzinfo=datetime.timezone.utc)
