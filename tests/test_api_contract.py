"""Facade contract: the exported surface of ``repro.api`` is pinned.

Anything in ``__all__`` or ``_COMPONENT_EXPORTS`` is a compatibility
promise: removing or renaming an entry is a breaking change (major bump
of ``API_VERSION``), adding one is a compatible change (minor bump).
When one of these tests fails, either revert the facade change or bump
``API_VERSION`` *and* update the pinned lists here in the same commit.
"""

from __future__ import annotations

import pytest

from repro import api

PINNED_VERSION = "1.2"

PINNED_ALL = [
    "API_VERSION",
    "StudyRun",
    "TraceDiff",
    "build_corpus",
    "corpus_info",
    "crawl_figures_legs",
    "diff_traces",
    "golden_digests",
    "list_corpora",
    "list_experiments",
    "list_mechanisms",
    "load_trace",
    "mechanism_digests",
    "new_study",
    "render_diff",
    "render_report",
    "render_trace",
    "run_analysis",
    "run_experiments",
    "run_one",
    "run_study",
    "verify_corpus",
]

PINNED_COMPONENTS = [
    "AndroidBrowser",
    "BloomFilter",
    "BrowserTestHarness",
    "Calibration",
    "Certificate",
    "CertificateBuilder",
    "CertificateRevocationList",
    "ChainContext",
    "CheckCost",
    "Chrome",
    "CrlPublisher",
    "CrlSetBuilder",
    "Delivery",
    "Ed25519Backend",
    "Firefox",
    "GolombCompressedSet",
    "InternetExplorer",
    "KeyPair",
    "LinkProfile",
    "MobileSafari",
    "MultiStapleServer",
    "Name",
    "OcspRequest",
    "Opera12",
    "Opera31",
    "RevocationMechanism",
    "RevocationRegime",
    "RevokedEntry",
    "Safari",
    "SessionCostModel",
    "SessionState",
    "SimBackend",
    "StrictClient",
    "TestPki",
    "UpdateModel",
    "all_browsers",
    "analyze_coverage",
    "attack_window_study",
    "blast_radius",
    "build_onecrl",
    "chain_check_cost",
    "format_bytes",
    "format_table",
    "generate_test_suite",
    "is_crlset_eligible",
    "traffic_report",
]


class TestVersion:
    def test_version_is_pinned(self):
        assert api.API_VERSION == PINNED_VERSION

    def test_version_shape(self):
        major, minor = api.API_VERSION.split(".")
        assert major.isdigit() and minor.isdigit()


class TestExportedSurface:
    def test_all_is_exactly_the_pinned_list(self):
        assert list(api.__all__) == PINNED_ALL

    def test_all_is_sorted(self):
        assert list(api.__all__) == sorted(api.__all__)

    def test_every_all_entry_resolves(self):
        for name in PINNED_ALL:
            assert getattr(api, name) is not None, name


class TestComponentReExports:
    def test_component_exports_are_exactly_the_pinned_list(self):
        assert sorted(api._COMPONENT_EXPORTS) == PINNED_COMPONENTS

    def test_every_component_resolves_lazily(self):
        for name in PINNED_COMPONENTS:
            attr = getattr(api, name)
            assert attr is not None, name
            # The re-export is the implementing object itself, not a copy.
            module = __import__(
                api._COMPONENT_EXPORTS[name], fromlist=[name]
            )
            assert attr is getattr(module, name), name

    def test_dir_covers_the_whole_surface(self):
        names = dir(api)
        for name in PINNED_ALL + PINNED_COMPONENTS:
            assert name in names

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            api.NoSuchExport

    def test_benchmarks_only_import_the_facade(self):
        """The micro-benches ride on the facade: no ``repro.*`` internals
        (the RPR012 lint rule enforces the pool side of this)."""
        from pathlib import Path
        import re

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        pattern = re.compile(
            r"^\s*(?:from|import)\s+(repro[.\w]*)", re.MULTILINE
        )
        for path in sorted(bench_dir.glob("*.py")):
            for module in pattern.findall(path.read_text()):
                assert module in ("repro", "repro.api"), (
                    f"{path.name} imports {module}; benchmarks must go "
                    "through repro.api"
                )
