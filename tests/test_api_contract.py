"""Facade contract: the exported surface of ``repro.api`` is pinned.

API 2.0 restructures the facade into namespaced sub-facades
(``api.study``, ``api.corpus``, ``api.trace``, ``api.analysis``,
``api.serve``); every pre-2.0 flat name survives as a deprecated alias
resolved lazily by the module ``__getattr__`` (PEP 562), returning the
*identical* object with a ``DeprecationWarning``.

Anything pinned here is a compatibility promise: removing or renaming an
entry is a breaking change (major bump of ``API_VERSION``), adding one
is a compatible change (minor bump).  When one of these tests fails,
either revert the facade change or bump ``API_VERSION`` *and* update the
pinned lists here in the same commit.
"""

from __future__ import annotations

import warnings

import pytest

from repro import api

PINNED_VERSION = "2.0"

PINNED_ALL = [
    "API_VERSION",
    "DEPRECATED_ALIASES",
    "analysis",
    "corpus",
    "serve",
    "study",
    "trace",
]

PINNED_FACETS = {
    "study": [
        "StudyRun",
        "crawl_figures_legs",
        "golden_digests",
        "list_experiments",
        "list_mechanisms",
        "mechanism_digests",
        "new_study",
        "render_report",
        "run_experiments",
        "run_one",
        "run_study",
    ],
    "corpus": ["build", "info", "list", "verify"],
    "trace": ["TraceDiff", "diff", "load", "render", "render_diff"],
    "analysis": ["run"],
    "serve": [
        "FleetConfig",
        "build_service",
        "render_serving_report",
        "run_fleet",
        "serving_digests",
    ],
}

#: every 1.x flat name -> its namespaced home.  The alias table in
#: ``repro.api`` must match exactly: dropping an alias is a breaking
#: change, and a new namespaced member never gets a *new* flat alias.
PINNED_ALIASES = {
    "StudyRun": ("study", "StudyRun"),
    "TraceDiff": ("trace", "TraceDiff"),
    "build_corpus": ("corpus", "build"),
    "corpus_info": ("corpus", "info"),
    "crawl_figures_legs": ("study", "crawl_figures_legs"),
    "diff_traces": ("trace", "diff"),
    "golden_digests": ("study", "golden_digests"),
    "list_corpora": ("corpus", "list"),
    "list_experiments": ("study", "list_experiments"),
    "list_mechanisms": ("study", "list_mechanisms"),
    "load_trace": ("trace", "load"),
    "mechanism_digests": ("study", "mechanism_digests"),
    "new_study": ("study", "new_study"),
    "render_diff": ("trace", "render_diff"),
    "render_report": ("study", "render_report"),
    "render_trace": ("trace", "render"),
    "run_analysis": ("analysis", "run"),
    "run_experiments": ("study", "run_experiments"),
    "run_one": ("study", "run_one"),
    "run_study": ("study", "run_study"),
    "verify_corpus": ("corpus", "verify"),
}

PINNED_COMPONENTS = [
    "AndroidBrowser",
    "BloomFilter",
    "BrowserTestHarness",
    "Calibration",
    "Certificate",
    "CertificateBuilder",
    "CertificateRevocationList",
    "ChainContext",
    "CheckCost",
    "Chrome",
    "CrlPublisher",
    "CrlSetBuilder",
    "Delivery",
    "Ed25519Backend",
    "Firefox",
    "GolombCompressedSet",
    "InternetExplorer",
    "KeyPair",
    "LINK_PROFILES",
    "LinkProfile",
    "MobileSafari",
    "MultiStapleServer",
    "Name",
    "OcspRequest",
    "Opera12",
    "Opera31",
    "RevocationMechanism",
    "RevocationRegime",
    "RevokedEntry",
    "Safari",
    "ServeModel",
    "SessionCostModel",
    "SessionState",
    "SimBackend",
    "StrictClient",
    "TestPki",
    "UpdateModel",
    "all_browsers",
    "analyze_coverage",
    "attack_window_study",
    "blast_radius",
    "build_onecrl",
    "chain_check_cost",
    "format_bytes",
    "format_table",
    "generate_test_suite",
    "is_crlset_eligible",
    "traffic_report",
]


class TestVersion:
    def test_version_is_pinned(self):
        assert api.API_VERSION == PINNED_VERSION

    def test_version_shape(self):
        major, minor = api.API_VERSION.split(".")
        assert major.isdigit() and minor.isdigit()


class TestNamespacedSurface:
    def test_all_is_exactly_the_pinned_list(self):
        assert list(api.__all__) == PINNED_ALL

    def test_all_is_sorted(self):
        assert list(api.__all__) == sorted(api.__all__)

    @pytest.mark.parametrize("facet", sorted(PINNED_FACETS))
    def test_facet_members_are_pinned(self, facet):
        assert list(getattr(api, facet).members) == PINNED_FACETS[facet]

    @pytest.mark.parametrize("facet", sorted(PINNED_FACETS))
    def test_every_facet_member_resolves(self, facet):
        namespace = getattr(api, facet)
        for member in PINNED_FACETS[facet]:
            assert getattr(namespace, member) is not None, member

    @pytest.mark.parametrize("facet", sorted(PINNED_FACETS))
    def test_facet_repr_and_dir(self, facet):
        namespace = getattr(api, facet)
        assert f"repro.api.{facet}" in repr(namespace)
        assert sorted(dir(namespace)) == sorted(PINNED_FACETS[facet])


class TestDeprecatedAliases:
    def test_alias_table_is_pinned(self):
        assert api.DEPRECATED_ALIASES == PINNED_ALIASES

    def test_every_alias_targets_a_pinned_member(self):
        for facet, attribute in PINNED_ALIASES.values():
            assert attribute in PINNED_FACETS[facet], (facet, attribute)

    @pytest.mark.parametrize("alias", sorted(PINNED_ALIASES))
    def test_alias_warns_and_resolves_to_the_same_object(self, alias):
        facet, attribute = PINNED_ALIASES[alias]
        with pytest.warns(DeprecationWarning, match=f"repro.api.{alias} "):
            flat = getattr(api, alias)
        assert flat is getattr(getattr(api, facet), attribute)

    def test_warning_names_the_namespaced_home(self):
        with pytest.warns(DeprecationWarning) as caught:
            api.run_study  # noqa: B018
        assert "repro.api.study.run_study" in str(caught[0].message)

    def test_aliases_are_not_module_globals(self):
        """Flat names resolve only through ``__getattr__`` -- a module
        global would silently bypass the deprecation path."""
        for alias in PINNED_ALIASES:
            assert alias not in vars(api), alias


class TestComponentReExports:
    def test_component_exports_are_exactly_the_pinned_list(self):
        assert sorted(api._COMPONENT_EXPORTS) == PINNED_COMPONENTS

    def test_every_component_resolves_lazily(self):
        for name in PINNED_COMPONENTS:
            attr = getattr(api, name)
            assert attr is not None, name
            # The re-export is the implementing object itself, not a copy.
            module = __import__(
                api._COMPONENT_EXPORTS[name], fromlist=[name]
            )
            assert attr is getattr(module, name), name

    def test_component_exports_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.LinkProfile  # noqa: B018
            api.LINK_PROFILES  # noqa: B018
            api.ServeModel  # noqa: B018

    def test_link_profiles_canonical(self):
        """The broadband/mobile profiles have one home: the facade and
        the serving fleet share the same objects."""
        profiles = api.LINK_PROFILES
        assert set(profiles) == {"broadband", "mobile"}
        assert profiles["broadband"] == api.LinkProfile()
        assert profiles["mobile"] == api.LinkProfile.mobile()


class TestErrorPath:
    def test_dir_covers_the_whole_surface(self):
        names = dir(api)
        for name in (
            PINNED_ALL + PINNED_COMPONENTS + sorted(PINNED_ALIASES)
        ):
            assert name in names

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            api.NoSuchExport  # noqa: B018

    def test_unknown_attribute_suggests_near_misses(self):
        with pytest.raises(AttributeError, match="did you mean"):
            api.run_studdy  # noqa: B018
        with pytest.raises(AttributeError) as excinfo:
            api.lst_mechanisms  # noqa: B018
        assert "list_mechanisms" in str(excinfo.value)

    def test_unknown_attribute_without_a_near_miss_is_plain(self):
        with pytest.raises(AttributeError) as excinfo:
            api.zzqx_not_even_close  # noqa: B018
        assert "did you mean" not in str(excinfo.value)


class TestBenchmarkDiscipline:
    def test_benchmarks_only_import_the_facade(self):
        """The micro-benches ride on the facade: no ``repro.*`` internals
        (the RPR012 lint rule enforces the pool side of this)."""
        from pathlib import Path
        import re

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        pattern = re.compile(
            r"^\s*(?:from|import)\s+(repro[.\w]*)", re.MULTILINE
        )
        for path in sorted(bench_dir.glob("*.py")):
            for module in pattern.findall(path.read_text()):
                assert module in ("repro", "repro.api"), (
                    f"{path.name} imports {module}; benchmarks must go "
                    "through repro.api"
                )

    def test_benchmarks_never_use_flat_aliases(self):
        """Benchmarks are first-class facade clients: they use the 2.0
        namespaced form, never a deprecated flat alias (RPR016 enforces
        the same for ``src/`` and ``tests/``)."""
        from pathlib import Path
        import re

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        flat = re.compile(
            r"\bapi\.(" + "|".join(sorted(PINNED_ALIASES)) + r")\b"
        )
        for path in sorted(bench_dir.glob("*.py")):
            match = flat.search(path.read_text())
            assert match is None, (
                f"{path.name} uses deprecated flat alias api.{match.group(1)}"
            )
