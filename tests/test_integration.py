"""Cross-module integration stories.

Each test exercises a complete end-to-end path the paper's measurement
depends on, crossing at least three subsystem boundaries.
"""

from __future__ import annotations

import datetime

import pytest

from repro.browsers.certgen import TestPki
from repro.browsers.desktop import InternetExplorer, Safari
from repro.browsers.mobile import MobileSafari
from repro.browsers.policy import ChainContext

NOW = datetime.datetime(2015, 3, 31, 12, 0, tzinfo=datetime.timezone.utc)


class TestRevocationLifecycle:
    """CA revokes -> CRL publishes -> network serves -> client rejects."""

    def test_full_crl_path(self):
        pki = TestPki("int-crl", 1, {"crl"}, ev=False)
        browser = InternetExplorer(version="11.0")
        # Before revocation: accepted.
        chain, staple = pki.handshake(status_request=browser.requests_staple())
        ctx = ChainContext(chain, staple, pki.checker(), NOW)
        assert browser.validate(ctx).accepted
        # CA processes a revocation request.
        pki.revoke(0)
        ctx = ChainContext(chain, staple, pki.checker(), NOW)
        result = browser.validate(ctx)
        assert not result.accepted

    def test_full_ocsp_path(self):
        pki = TestPki("int-ocsp", 2, {"ocsp"}, ev=False)
        pki.revoke(1)
        browser = Safari()
        chain, staple = pki.handshake(status_request=False)
        result = browser.validate(ChainContext(chain, staple, pki.checker(), NOW))
        assert not result.accepted

    def test_soft_fail_attack_window(self):
        """An attacker who blocks the revocation endpoints turns off
        checking for soft-failing browsers (§2.3) but not for IE11's
        leaf hard-fail."""
        def blocked(pki: TestPki) -> None:
            pki.revoke(0)
            pki.make_unavailable(0, "ocsp", "no_response")

        pki_a = TestPki("int-sf-a", 1, {"ocsp"}, ev=False)
        blocked(pki_a)
        chain, staple = pki_a.handshake(status_request=False)
        soft = Safari()
        assert soft.validate(ChainContext(chain, staple, pki_a.checker(), NOW)).accepted

        pki_b = TestPki("int-sf-b", 1, {"ocsp"}, ev=False)
        blocked(pki_b)
        browser = InternetExplorer(version="11.0")
        chain, staple = pki_b.handshake(status_request=True)
        hard = browser.validate(ChainContext(chain, staple, pki_b.checker(), NOW))
        assert not hard.accepted

    def test_mobile_user_accepts_revoked_cert(self):
        """The paper's bleakest path: a revoked certificate sails through
        a mobile browser untouched."""
        pki = TestPki("int-mobile", 1, {"crl", "ocsp"}, ev=False)
        pki.revoke(0)
        browser = MobileSafari("8")
        chain, staple = pki.handshake(status_request=False)
        result = browser.validate(ChainContext(chain, staple, pki.checker(), NOW))
        assert result.accepted
        assert not result.performed_any_check


class TestScanToCrlSet:
    """Ecosystem -> crawl -> CRLSet -> client protection check."""

    def test_crlset_would_protect_some_users(self, ecosystem, crlset_history):
        """Chrome+CRLSet blocks exactly the covered revocations."""
        snapshot = crlset_history.final_snapshot
        parent_by_int = {
            rec.intermediate_id: rec.spki_hash for rec in ecosystem.intermediates
        }
        protected = 0
        unprotected = 0
        end = ecosystem.calibration.measurement_end
        for leaf in ecosystem.leaves:
            if not leaf.is_revoked_by(end) or not leaf.is_fresh(end):
                continue
            parent = parent_by_int[leaf.intermediate_id]
            if snapshot.is_revoked(parent, leaf.serial_number):
                protected += 1
            else:
                unprotected += 1
        # The paper's conclusion: the overwhelming majority of revoked
        # certificates are invisible to CRLSet users.
        assert unprotected > 10 * max(protected, 1)

    def test_bloom_filter_alternative_catches_everything(
        self, ecosystem, crlset_history
    ):
        """§7.4: a 256 KB Bloom filter over all *observed* revocations has
        no false negatives, unlike the CRLSet."""
        from repro.crlset.bloom import BloomFilter
        from repro.crlset.format import serial_to_bytes

        end = ecosystem.calibration.measurement_end
        revoked = [
            leaf
            for leaf in ecosystem.leaves
            if leaf.is_revoked_by(end) and leaf.is_fresh(end)
        ]
        bloom = BloomFilter.for_items(len(revoked), 256 * 1024 * 8)
        parent_by_int = {
            rec.intermediate_id: rec.spki_hash for rec in ecosystem.intermediates
        }
        for leaf in revoked:
            key = parent_by_int[leaf.intermediate_id] + serial_to_bytes(
                leaf.serial_number
            )
            bloom.add(key)
        misses = sum(
            1
            for leaf in revoked
            if (
                parent_by_int[leaf.intermediate_id]
                + serial_to_bytes(leaf.serial_number)
            )
            not in bloom
        )
        assert misses == 0
        assert bloom.size_bytes == 256 * 1024

    def test_crl_cost_for_median_certificate(self, study):
        """§5.2: fetching the median certificate's CRL costs hundreds of
        times more bytes than an OCSP exchange."""
        from repro.core.stats import weighted_cdf

        sizes = study.crl_sizes()
        crls = {crl.url: crl for crl in study.ecosystem.crls}
        weighted = weighted_cdf(
            (sizes[url], crls[url].assigned_cert_count) for url in sizes
        )
        ocsp_response_size = 400  # measured in tests/revocation/test_ocsp.py
        assert weighted.median > 20 * ocsp_response_size
