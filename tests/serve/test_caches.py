"""nextUpdate-aware cache invariants, locked down with seeded
hypothesis properties (the suite-wide ``derandomize`` profile in
``tests/conftest.py`` makes every example stream reproducible).

The invariants the serving layer leans on:

* capacity bounds hold after every operation;
* an expired entry is never served -- dropped on access, counted as an
  expiration plus a miss;
* eviction removes the soonest-expiring entry first (ties broken by
  key), never a later-expiring one while an earlier one remains;
* the statistics identities (lookups = hits + misses; insertions vs.
  evictions vs. live entries) balance exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.caches import CacheStats, CacheTiers, NextUpdateCache

# One cache operation: (op, key, expiry-or-now).  Small key/tick spaces
# force collisions, overwrites, and expiry interleavings.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "get"]),
        st.integers(min_value=0, max_value=9).map(lambda i: f"k{i}"),
        st.integers(min_value=0, max_value=30),
    ),
    max_size=120,
)


def _replay(cache: NextUpdateCache, ops) -> int:
    """Drive the cache; clamp ``get`` ticks below ``put`` expiries often
    enough that both branches execute.  Returns the op count."""
    for op, key, tick in ops:
        if op == "put":
            cache.put(key, bytes(1 + tick % 7), expires_tick=tick)
        else:
            cache.get(key, now_tick=tick // 2)
    return len(ops)


class TestBounds:
    @given(ops=_ops)
    @settings(max_examples=60, deadline=None)
    def test_max_entries_respected_after_every_op(self, ops):
        cache = NextUpdateCache("t", max_entries=4)
        for op, key, tick in ops:
            if op == "put":
                cache.put(key, b"xx", expires_tick=tick)
            else:
                cache.get(key, now_tick=tick)
            assert len(cache) <= 4

    @given(ops=_ops)
    @settings(max_examples=60, deadline=None)
    def test_max_bytes_respected_after_every_op(self, ops):
        cache = NextUpdateCache("t", max_bytes=16)
        for op, key, tick in ops:
            if op == "put":
                cache.put(key, bytes(1 + tick % 7), expires_tick=tick)
            else:
                cache.get(key, now_tick=tick)
            assert cache.current_bytes <= 16

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            NextUpdateCache("t", max_entries=0)
        with pytest.raises(ValueError):
            NextUpdateCache("t", max_bytes=0)


class TestExpiry:
    @given(
        expiry=st.integers(min_value=0, max_value=50),
        now=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_expired_entries_are_never_served(self, expiry, now):
        cache = NextUpdateCache("t")
        cache.put("k", b"body", expires_tick=expiry)
        got = cache.get("k", now_tick=now)
        if expiry <= now:
            assert got is None
            assert cache.stats.expirations == 1
            assert "k" not in cache
        else:
            assert got == b"body"

    def test_expired_access_counts_expiration_and_miss(self):
        cache = NextUpdateCache("t")
        cache.put("k", b"body", expires_tick=5)
        assert cache.get("k", now_tick=5) is None
        assert cache.stats.misses == 1
        assert cache.stats.expirations == 1
        assert cache.stats.hits == 0
        # the entry is gone, not resurrectable
        assert cache.get("k", now_tick=0) is None
        assert cache.stats.misses == 2


class TestEvictionOrder:
    def test_soonest_expiring_evicted_first(self):
        cache = NextUpdateCache("t", max_entries=2)
        cache.put("late", b"a", expires_tick=100)
        cache.put("soon", b"b", expires_tick=1)
        cache.put("mid", b"c", expires_tick=50)
        assert "soon" not in cache
        assert "late" in cache and "mid" in cache

    def test_key_breaks_expiry_ties_deterministically(self):
        cache = NextUpdateCache("t", max_entries=2)
        cache.put("b", b"x", expires_tick=7)
        cache.put("a", b"x", expires_tick=7)
        cache.put("c", b"x", expires_tick=7)
        assert "a" not in cache  # (7, "a") < (7, "b") < (7, "c")
        assert "b" in cache and "c" in cache

    def test_overwrite_does_not_leave_stale_heap_evictions(self):
        cache = NextUpdateCache("t", max_entries=2)
        cache.put("k", b"x", expires_tick=1)
        cache.put("k", b"x", expires_tick=100)  # refresh: old record stale
        cache.put("other", b"x", expires_tick=50)
        cache.put("third", b"x", expires_tick=60)
        # the stale (1, "k") heap record must be skipped: the refreshed
        # "k" expires last and survives; "other" (soonest live) goes.
        assert "k" in cache
        assert "other" not in cache

    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9).map(lambda i: f"k{i}"),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=40,
            unique_by=lambda e: e[0],
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_survivors_are_the_latest_expiring(self, entries):
        """After inserting N unique keys into a capacity-K cache, the
        survivors are exactly the K latest-expiring (key tie-break)."""
        cache = NextUpdateCache("t", max_entries=3)
        for key, expiry in entries:
            cache.put(key, b"x", expires_tick=expiry)
        expected = sorted(entries, key=lambda e: (e[1], e[0]))[-3:]
        assert {key for key, _ in expected} == set(cache._entries)


class TestStatsIdentities:
    @given(ops=_ops)
    @settings(max_examples=60, deadline=None)
    def test_accounting_balances(self, ops):
        cache = NextUpdateCache("t", max_entries=3)
        puts = _replay(cache, ops) and sum(
            1 for op, _, _ in ops if op == "put"
        )
        gets = sum(1 for op, _, _ in ops if op == "get")
        stats = cache.stats
        assert stats.lookups == stats.hits + stats.misses == gets
        assert stats.insertions == puts
        assert stats.evictions + stats.expirations <= stats.insertions
        assert len(cache) <= stats.insertions
        assert 0.0 <= stats.hit_rate <= 1.0

    def test_as_dict_round_trips_every_counter(self):
        stats = CacheStats(hits=3, misses=1, insertions=2, evictions=1)
        d = stats.as_dict()
        assert d["hits"] == 3 and d["misses"] == 1
        assert set(d) == {
            "hits", "misses", "insertions", "evictions",
            "expirations", "bytes_served", "bytes_inserted",
        }


class TestTiers:
    def test_default_tiers_cover_the_cacheable_endpoints(self):
        tiers = CacheTiers.default()
        assert set(tiers.tiers) == {"ocsp", "crl", "staple", "aggregate"}
        assert tiers.for_endpoint("issuance") is None
        assert tiers.for_endpoint("none") is None

    def test_stats_are_sorted_by_tier_name(self):
        names = list(CacheTiers.default().stats())
        assert names == sorted(names)
