"""The sans-io service core: ports in, bytes out, exact accounting."""

from __future__ import annotations

import datetime

import pytest

from repro.serve.adapters import TickClock, split_batch, synth_body
from repro.serve.caches import CacheTiers, NextUpdateCache
from repro.serve.core import ServeRequest, StatusService


class RecordingStorage:
    """StoragePort stub: fixed body per key, counts signings."""

    def __init__(self, expiry_ticks: int = 10) -> None:
        self.signings = 0
        self.expiry_ticks = expiry_ticks

    def body(self, endpoint: str, key: str, at) -> bytes:
        self.signings += 1
        return f"{endpoint}:{key}".encode()

    def expiry_tick(self, endpoint: str, tick: int) -> int:
        return tick + self.expiry_ticks


class RecordingTransport:
    """TransportPort stub: remembers every delivery."""

    def __init__(self) -> None:
        self.deliveries: list[tuple[str, bytes, str]] = []

    def deliver(self, request, body, at, source) -> None:
        self.deliveries.append((request.key, body, source))


def _service(expiry_ticks: int = 10):
    storage = RecordingStorage(expiry_ticks)
    transport = RecordingTransport()
    clock = TickClock(epoch=datetime.datetime(2015, 3, 31))
    service = StatusService(storage, clock, transport)
    return service, storage, transport


class TestServeRequest:
    def test_validates_count_and_tick(self):
        with pytest.raises(ValueError):
            ServeRequest("ocsp", "k", tick=0, mechanism="m", count=0)
        with pytest.raises(ValueError):
            ServeRequest("ocsp", "k", tick=-1, mechanism="m")


class TestStatusService:
    def test_miss_signs_then_hit_serves_presigned(self):
        service, storage, transport = _service()
        first = service.handle(ServeRequest("ocsp", "cert/1", 0, "m"))
        second = service.handle(ServeRequest("ocsp", "cert/1", 1, "m"))
        assert first == second == b"ocsp:cert/1"
        assert storage.signings == 1
        assert [s for _, _, s in transport.deliveries] == [
            "origin", "presigned",
        ]
        assert service.stats.origin_misses == 1
        assert service.stats.presigned_hits == 1

    def test_expired_entry_resigns(self):
        service, storage, _ = _service(expiry_ticks=2)
        service.handle(ServeRequest("ocsp", "cert/1", 0, "m"))
        service.handle(ServeRequest("ocsp", "cert/1", 2, "m"))  # expired
        assert storage.signings == 2

    def test_batched_count_is_client_weighted(self):
        service, _, _ = _service()
        service.handle(ServeRequest("ocsp", "cert/1", 0, "m", count=250))
        service.handle(ServeRequest("ocsp", "cert/1", 1, "m", count=750))
        assert service.stats.requests == 1000
        assert service.stats.origin_misses == 250
        assert service.stats.presigned_hits == 750
        assert service.stats.by_endpoint == {"ocsp": 1000}

    def test_uncached_endpoint_always_reaches_origin(self):
        service, storage, _ = _service()
        for tick in range(3):
            service.handle(ServeRequest("issuance", "cert/1", tick, "m"))
        assert storage.signings == 3

    def test_custom_tiers_are_honoured(self):
        storage = RecordingStorage()
        transport = RecordingTransport()
        clock = TickClock(epoch=datetime.datetime(2015, 3, 31))
        tiers = CacheTiers({"ocsp": NextUpdateCache("ocsp", max_entries=1)})
        service = StatusService(storage, clock, transport, caches=tiers)
        service.handle(ServeRequest("ocsp", "a", 0, "m"))
        service.handle(ServeRequest("ocsp", "b", 0, "m"))  # evicts a
        service.handle(ServeRequest("ocsp", "a", 1, "m"))  # re-signs
        assert storage.signings == 3

    def test_accounting_identity(self):
        service, _, _ = _service()
        for tick in range(5):
            service.handle(ServeRequest("ocsp", f"k{tick % 2}", tick, "m"))
        stats = service.stats
        assert stats.presigned_hits + stats.origin_misses == stats.requests
        assert sum(stats.by_endpoint.values()) == stats.requests


class TestAdapterPrimitives:
    def test_tick_clock_arithmetic(self):
        clock = TickClock(
            epoch=datetime.datetime(2015, 3, 31), tick_seconds=900
        )
        assert clock.at(0) == datetime.datetime(2015, 3, 31)
        assert clock.at(96) == datetime.datetime(2015, 4, 1)
        assert clock.ticks_for_days(1.0) == 96
        assert clock.ticks_for_days(0.0001) == 1  # never zero

    def test_synth_body_exact_size_and_deterministic(self):
        assert synth_body("tag", 0) == b""
        body = synth_body("tag", 1000)
        assert len(body) == 1000
        assert body == synth_body("tag", 1000)
        assert body != synth_body("other", 1000)

    def test_split_batch_exact_and_near_equal(self):
        assert split_batch(10, 3) == [4, 3, 3]
        assert split_batch(2, 8) == [1, 1]  # never zero-sized chunks
        assert sum(split_batch(1_000_001, 8)) == 1_000_001
        assert max(split_batch(1_000_001, 8)) - min(
            split_batch(1_000_001, 8)
        ) <= 1
