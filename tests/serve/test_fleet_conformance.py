"""Serving-layer conformance, parametrized over the mechanism registry.

Every registered mechanism's serving stack must satisfy the same
contract (docs/SERVING.md):

* determinism -- same corpus + seed + config, byte-identical report;
* accounting -- the cache tiers, the service core, the storage port,
  and the transport-level :class:`~repro.net.fetcher.FetchStats` agree
  exactly (no request is counted twice or dropped);
* byte parity -- the body the server signs for a lookup is exactly the
  payload the client-side ``check_cost`` model says that lookup costs;
* graceful degradation -- rising fault probability never improves tail
  latency (the fault-stream nesting argument in
  :mod:`repro.serve.adapters`).

A new mechanism registered in :mod:`repro.mechanisms.registry` is
swept in automatically; there is nothing serving-specific to add here.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms import SessionState, mechanism_names
from repro.net.faults import FaultKind, FaultPlan, FaultSpec
from repro.serve import ClientFleet, FleetConfig, apportion
from repro.serve.core import ServeRequest

MECHANISMS = sorted(mechanism_names())

#: a fleet small enough to run per-mechanism in the suite but big
#: enough to exercise every tick, cohort, and cache tier.
SMALL = FleetConfig(
    sessions=20_000, ticks=6, tick_seconds=900, representatives=2,
    catalog_size=512,
)


def _mechanism(study, name):
    for mechanism in study.mechanism_suite:
        if mechanism.name == name:
            return mechanism
    raise LookupError(name)


@pytest.fixture(scope="module")
def fleets(study):
    """One completed fleet per registered mechanism (reports + stacks)."""
    built = {}
    for name in MECHANISMS:
        fleet = ClientFleet(study, _mechanism(study, name), SMALL)
        built[name] = (fleet, fleet.run())
    return built


class TestDeterminism:
    @pytest.mark.parametrize("name", MECHANISMS)
    def test_same_seed_same_report_bytes(self, study, fleets, name):
        _, report = fleets[name]
        rerun = ClientFleet(study, _mechanism(study, name), SMALL).run()
        assert rerun.render_block() == report.render_block()

    @pytest.mark.parametrize("name", MECHANISMS)
    def test_different_seed_perturbs_online_traffic(self, study, fleets, name):
        _, report = fleets[name]
        if not report.requests:
            pytest.skip("no online endpoint traffic to perturb")
        other = ClientFleet(
            study, _mechanism(study, name), replace(SMALL, seed=1)
        ).run()
        # aggregate pull schedules are seed-independent by design;
        # request-driven traffic must not be.
        if report.endpoint in ("ocsp", "crl", "staple"):
            assert other.render_block() != report.render_block()


class TestAccounting:
    @pytest.mark.parametrize("name", MECHANISMS)
    def test_service_and_transport_agree_on_client_count(self, fleets, name):
        fleet, report = fleets[name]
        assert fleet.service.stats.requests == fleet.transport.stats.fetches
        assert (
            fleet.service.stats.presigned_hits
            + fleet.service.stats.origin_misses
            == fleet.service.stats.requests
        )

    @pytest.mark.parametrize("name", MECHANISMS)
    def test_cache_misses_equal_origin_signings(self, fleets, name):
        """Every tier miss is exactly one origin signing (issuance
        mechanisms sign offline, outside the cache path)."""
        fleet, report = fleets[name]
        if report.endpoint == "issuance":
            assert sum(
                s.lookups for s in fleet.caches.stats().values()
            ) == 0
            return
        misses = sum(s.misses for s in fleet.caches.stats().values())
        assert misses == fleet.storage.signings

    @pytest.mark.parametrize("name", MECHANISMS)
    def test_no_faults_means_no_failures(self, fleets, name):
        _, report = fleets[name]
        assert report.fetch.failures == 0
        assert report.fetch.successes == report.fetch.fetches

    @pytest.mark.parametrize("name", MECHANISMS)
    def test_latency_histogram_covers_every_delivery(self, fleets, name):
        fleet, report = fleets[name]
        assert sum(report.latency.counts) == fleet.transport.stats.fetches


class TestByteParity:
    @pytest.mark.parametrize("name", MECHANISMS)
    def test_served_body_matches_client_side_cost(self, study, name):
        """The parity seam: for every catalog leaf whose client-side
        check fetches, the server signs a body of exactly the size the
        client-side :class:`CheckCost` model charged for it."""
        mechanism = _mechanism(study, name)
        fleet = ClientFleet(study, mechanism, SMALL)
        if not fleet.model.serves_online:
            pytest.skip("no online endpoint")
        catalog, _ = fleet._catalog()
        checked = 0
        for leaf in catalog[:50]:
            cost = mechanism.check_cost(leaf, SessionState())
            if not cost.fetched:
                continue
            for endpoint, key in fleet._visit_requests(leaf, cost):
                body = fleet.service.handle(
                    ServeRequest(endpoint, key, 0, mechanism.name)
                )
                assert len(body) == cost.fetched[0], (leaf.cert_id, endpoint)
                checked += 1
        if checked == 0:
            pytest.skip("no fetching leaves in the catalog head")


class TestFaultDegradation:
    def test_p99_weakly_monotone_and_fault_sets_nest(self, study):
        """Rising flaky probability: failures never shrink, tail latency
        never improves, availability never rises."""
        p99s, failures, avail = [], [], []
        for probability in (0.0, 0.15, 0.45):
            plan = FaultPlan(seed=SMALL.seed)
            if probability:
                plan.add(
                    "*", FaultSpec(FaultKind.FLAKY, probability=probability)
                )
            report = ClientFleet(
                study,
                _mechanism(study, "ocsp"),
                replace(SMALL, fault_plan=plan),
            ).run()
            p99s.append(report.latency.quantile(0.99))
            failures.append(report.fetch.failures)
            avail.append(report.availability)
        assert p99s == sorted(p99s)
        assert failures == sorted(failures)
        assert avail == sorted(avail, reverse=True)
        assert failures[0] == 0 and failures[-1] > 0


class TestApportion:
    @given(
        total=st.integers(min_value=0, max_value=10_000),
        weights=st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_exact_total_and_proportionality(self, total, weights):
        shares = apportion(total, weights)
        assert sum(shares) == (total if sum(weights) else 0)
        assert all(s >= 0 for s in shares)
        scale = sum(weights)
        if scale:
            for share, weight in zip(shares, weights):
                assert abs(share - total * weight / scale) < 1
                if weight == 0:
                    assert share == 0

    def test_rejects_negatives(self):
        with pytest.raises(ValueError):
            apportion(-1, [1.0])
        with pytest.raises(ValueError):
            apportion(1, [-1.0])
