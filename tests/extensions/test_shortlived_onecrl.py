"""Short-lived certificate and OneCRL extension tests."""

from __future__ import annotations

import datetime

import pytest

from repro.extensions.onecrl import OneCrl, blast_radius, build_onecrl
from repro.extensions.shortlived import (
    RevocationRegime,
    attack_window_study,
)


class TestShortLived:
    @pytest.fixture(scope="class")
    def report(self, ecosystem):
        return attack_window_study(ecosystem, sample=800)

    def test_regime_ordering(self, report):
        """Soft-fail >> hard-fail ~ short-lived: the [46] argument."""
        soft = report.mean(RevocationRegime.SOFT_FAIL)
        hard = report.mean(RevocationRegime.HARD_FAIL)
        short = report.mean(RevocationRegime.SHORT_LIVED)
        assert soft > 5 * hard
        assert soft > 5 * short

    def test_soft_fail_window_is_months(self, report):
        # With ~1y validities, an unnoticed revocation leaves months.
        assert report.mean(RevocationRegime.SOFT_FAIL) > 60

    def test_short_lived_bounded_by_lifetime(self, report):
        ceiling = report.short_lived_days + 3.0 + 0.001  # + reaction time
        assert max(report.windows[RevocationRegime.SHORT_LIVED]) <= ceiling

    def test_improvement_factor(self, report):
        assert report.improvement_factor() > 5

    def test_windows_never_negative(self, report):
        for values in report.windows.values():
            assert all(v >= 0 for v in values)

    def test_shorter_lifetime_shrinks_window(self, ecosystem):
        long_report = attack_window_study(ecosystem, short_lived_days=30, sample=500)
        short_report = attack_window_study(ecosystem, short_lived_days=2, sample=500)
        assert short_report.mean(RevocationRegime.SHORT_LIVED) < long_report.mean(
            RevocationRegime.SHORT_LIVED
        )

    def test_empty_ecosystem_rejected(self, ecosystem):
        import copy

        class Fake:
            leaves = [l for l in ecosystem.leaves[:5] if False]

        with pytest.raises(ValueError):
            attack_window_study(Fake())


class TestOneCrl:
    def test_build_from_ecosystem(self, ecosystem, measurement_end):
        onecrl = build_onecrl(ecosystem, measurement_end)
        # The generator revokes a small number of intermediates (paper:
        # OneCRL held 8 certificates).
        assert 1 <= len(onecrl) <= 10

    def test_respects_revocation_dates(self, ecosystem):
        early = build_onecrl(ecosystem, datetime.date(2013, 6, 1))
        late = build_onecrl(ecosystem, datetime.date(2015, 3, 31))
        assert len(early) < len(late)

    def test_tiny_size(self, ecosystem, measurement_end):
        """The whole point: complete intermediate coverage in <1 KB,
        vs 250 KB for a 0.x%-coverage CRLSet."""
        onecrl = build_onecrl(ecosystem, measurement_end)
        assert onecrl.size_bytes < 1024

    def test_blocks_chain(self, ecosystem, measurement_end):
        onecrl = build_onecrl(ecosystem, measurement_end)
        revoked_spki = next(iter(onecrl.revoked_spkis))
        assert onecrl.is_revoked(revoked_spki)
        assert onecrl.blocks_chain([b"\x00" * 32, revoked_spki])
        assert not onecrl.blocks_chain([b"\x00" * 32])

    def test_blast_radius(self, ecosystem, measurement_end):
        """One intermediate endangers its whole leaf population."""
        onecrl = build_onecrl(ecosystem, measurement_end)
        revoked_record = next(
            record
            for record in ecosystem.intermediates
            if record.revoked_at is not None
        )
        radius = blast_radius(ecosystem, revoked_record.intermediate_id)
        assert radius > 0
        # Blocking one 32-byte entry protects every one of those leaves.
        assert radius * 32 > OneCrl(measurement_end, frozenset()).size_bytes
