"""RFC 6961 multi-stapling tests."""

from __future__ import annotations

import datetime

import pytest

from repro.browsers.certgen import TestPki
from repro.extensions.multistaple import (
    MultiStapleServer,
    chain_check_cost,
)
from repro.revocation.checker import CheckOutcome
from repro.revocation.ocsp import OcspRequest

NOW = datetime.datetime(2015, 3, 31, 12, 0, tzinfo=datetime.timezone.utc)


@pytest.fixture()
def pki():
    return TestPki("ms", 2, {"ocsp"}, ev=False)


def make_server(pki: TestPki) -> MultiStapleServer:
    fetchers = []
    for index in range(len(pki.chain) - 1):
        issuer = pki.issuer_ca_of(index)
        serial = pki.chain[index].serial_number

        def fetch(at, issuer=issuer, serial=serial):
            return issuer.ocsp_responder.respond(
                OcspRequest(issuer.issuer_key_hash, serial), at
            )

        fetchers.append(fetch)
    return MultiStapleServer(chain=pki.chain, staple_fetchers=fetchers)


class TestMultiStapleServer:
    def test_fetcher_count_validated(self, pki):
        with pytest.raises(ValueError):
            MultiStapleServer(chain=pki.chain, staple_fetchers=[lambda at: None])

    def test_warm_server_staples_whole_chain(self, pki):
        server = make_server(pki)
        server.warm_all(NOW)
        result = server.handshake(NOW, status_request_v2=True)
        assert result.complete
        assert len(result.staples) == len(pki.chain) - 1
        assert result.leaf_staple is not None

    def test_no_request_no_staples(self, pki):
        server = make_server(pki)
        server.warm_all(NOW)
        result = server.handshake(NOW, status_request_v2=False)
        assert result.staples == ()

    def test_staples_are_issuer_signed(self, pki):
        server = make_server(pki)
        server.warm_all(NOW)
        result = server.handshake(NOW, status_request_v2=True)
        for index, staple in enumerate(result.staples):
            issuer = pki.issuer_ca_of(index)
            assert staple.verify_signature(issuer.keys.public_key)

    def test_plain_server_comparison(self, pki):
        multi = make_server(pki)
        plain = multi.plain_tls_server()
        assert plain.stapling_enabled
        assert plain.chain == tuple(pki.chain)


class TestChainCheckCost:
    def test_multi_staple_removes_all_fetches(self, pki):
        server = make_server(pki)
        server.warm_all(NOW)
        result = server.handshake(NOW, status_request_v2=True)
        cost = chain_check_cost(result.chain, result.staples, pki.checker(), NOW)
        assert cost.fetches == 0
        assert cost.definitive

    def test_leaf_only_staple_still_needs_intermediate_fetches(self, pki):
        """The paper's §2.2 gap: classic stapling leaves intermediates
        to live OCSP."""
        server = make_server(pki)
        server.warm_all(NOW)
        full = server.handshake(NOW, status_request_v2=True)
        leaf_only = (full.staples[0],) + (None,) * (len(full.staples) - 1)
        cost = chain_check_cost(full.chain, leaf_only, pki.checker(), NOW)
        assert cost.fetches == len(pki.chain) - 2  # every intermediate

    def test_no_staples_max_fetches(self, pki):
        cost = chain_check_cost(
            pki.chain, (None,) * (len(pki.chain) - 1), pki.checker(), NOW
        )
        assert cost.fetches == len(pki.chain) - 1

    def test_revoked_intermediate_caught_via_staple(self, pki):
        pki.revoke(1)
        server = make_server(pki)
        server.warm_all(NOW)
        # Stock policy refuses to cache a revoked staple; the client then
        # fetches live and still learns the truth.
        result = server.handshake(NOW, status_request_v2=True)
        cost = chain_check_cost(result.chain, result.staples, pki.checker(), NOW)
        assert CheckOutcome.REVOKED in cost.outcomes
