"""CLI tests."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "table2" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig11", "--scale", "0.0005"]) == 0
        out = capsys.readouterr().out
        assert "Bloom" in out
        assert "paper vs measured" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
