"""CLI tests."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "table2" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig11", "--scale", "0.0005"]) == 0
        out = capsys.readouterr().out
        assert "Bloom" in out
        assert "paper vs measured" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestFaultFlags:
    def test_run_with_fault_profile(self, capsys):
        assert (
            main(
                [
                    "run",
                    "availability",
                    "--fault-profile",
                    "chaos",
                    "--fault-seed",
                    "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "profile=chaos" in out
        assert "fault seed 7" in out

    def test_fault_flags_before_subcommand(self, capsys):
        assert (
            main(
                ["--fault-profile", "flaky", "--fault-seed", "7", "run", "availability"]
            )
            == 0
        )
        assert "profile=flaky" in capsys.readouterr().out

    def test_unknown_profile_fails(self, capsys):
        assert main(["run", "availability", "--fault-profile", "mayhem"]) == 2
        assert "unknown fault profile" in capsys.readouterr().err

    def test_same_fault_seed_identical_output(self, capsys):
        main(["run", "availability", "--fault-profile", "chaos", "--fault-seed", "7"])
        first = capsys.readouterr().out
        main(["run", "availability", "--fault-profile", "chaos", "--fault-seed", "7"])
        assert capsys.readouterr().out == first
