"""CLI tests.

``main`` is a thin shell over :mod:`repro.api`; these tests cover both
the shell (argv handling, exit codes, printed output) and the facade
itself (``run_study``/``run_one``/``list_experiments``).
"""

from __future__ import annotations

import pytest

from repro import api
from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "table2" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig11", "--scale", "0.0005"]) == 0
        out = capsys.readouterr().out
        assert "Bloom" in out
        assert "paper vs measured" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestFaultFlags:
    def test_run_with_fault_profile(self, capsys):
        assert (
            main(
                [
                    "run",
                    "availability",
                    "--fault-profile",
                    "chaos",
                    "--fault-seed",
                    "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "profile=chaos" in out
        assert "fault seed 7" in out

    def test_fault_flags_before_subcommand(self, capsys):
        assert (
            main(
                ["--fault-profile", "flaky", "--fault-seed", "7", "run", "availability"]
            )
            == 0
        )
        assert "profile=flaky" in capsys.readouterr().out

    def test_unknown_profile_fails(self, capsys):
        assert main(["run", "availability", "--fault-profile", "mayhem"]) == 2
        assert "unknown fault profile" in capsys.readouterr().err

    def test_same_fault_seed_identical_output(self, capsys):
        main(["run", "availability", "--fault-profile", "chaos", "--fault-seed", "7"])
        first = capsys.readouterr().out
        main(["run", "availability", "--fault-profile", "chaos", "--fault-seed", "7"])
        assert capsys.readouterr().out == first


class TestApiFacade:
    """The stable surface the CLI is a shell over."""

    def test_list_experiments_matches_cli(self, capsys):
        experiments = api.study.list_experiments()
        assert "fig2" in experiments and "table2" in experiments
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id, title in experiments.items():
            assert experiment_id in out and title in out

    def test_run_one_returns_result(self):
        result = api.study.run_one("fig11", scale=0.0005)
        assert result.ok
        assert result.experiment_id == "fig11"
        assert "Bloom" in result.render()

    def test_run_study_unknown_raises_key_error(self):
        with pytest.raises(KeyError):
            api.study.run_study(experiment="fig99", scale=0.0005)

    def test_run_study_ok_rollup(self):
        run = api.study.run_study(experiment="fig11", scale=0.0005)
        assert run.ok
        assert run.crashes == 0 and run.shape_failures == 0
        assert [r.experiment_id for r in run.results] == ["fig11"]

    def test_all_exports_exist(self):
        for name in api.__all__:
            assert getattr(api, name) is not None
