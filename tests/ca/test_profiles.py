"""CA profile calibration tests (Table 1 inputs)."""

from __future__ import annotations

import pytest

from repro.ca.profiles import PAPER_CA_PROFILES, total_observed_certs


def profile(name):
    return next(p for p in PAPER_CA_PROFILES if p.name == name)


class TestTable1Values:
    def test_table1_counts_match_paper(self):
        # The nine Table 1 rows are verbatim paper data.
        expected = {
            "GoDaddy": (322, 1_050_014, 277_500, 1_184.0),
            "RapidSSL": (5, 626_774, 2_153, 34.5),
            "Comodo": (30, 447_506, 7_169, 517.6),
            "PositiveSSL": (3, 415_075, 8_177, 441.3),
            "GeoTrust": (27, 335_380, 3_081, 12.9),
            "Verisign": (37, 311_788, 15_438, 205.2),
            "Thawte": (32, 278_563, 4_446, 25.4),
            "GlobalSign": (26, 247_819, 24_242, 2_050.0),
            "StartCom": (17, 236_776, 1_752, 240.5),
        }
        for name, (crls, total, revoked, avg_kb) in expected.items():
            p = profile(name)
            assert p.crl_count == crls
            assert p.observed_certs == total
            assert p.observed_revoked == revoked
            assert p.avg_crl_kb == avg_kb

    def test_total_near_leaf_set_size(self):
        # Profiles should sum to roughly the paper's 5.07 M Leaf Set.
        assert 4_500_000 <= total_observed_certs() <= 5_800_000

    def test_apple_is_the_outlier(self):
        apple = profile("Apple")
        assert apple.avg_crl_kb == max(p.avg_crl_kb for p in PAPER_CA_PROFILES)
        assert apple.avg_crl_kb > 50_000  # the 76 MB CRL

    def test_rapidssl_ocsp_adoption_date(self):
        import datetime

        assert profile("RapidSSL").ocsp_since == datetime.date(2012, 7, 1)


class TestScaling:
    @pytest.mark.parametrize("scale", [0.001, 0.002, 0.01, 0.1])
    def test_scaled_counts_positive(self, scale):
        for p in PAPER_CA_PROFILES:
            assert p.scaled_certs(scale) >= 1
            assert p.scaled_crl_count(scale) >= 1
            assert p.scaled_revoked(scale) <= p.scaled_certs(scale)

    def test_scaled_revoked_fraction_preserved(self):
        p = profile("GoDaddy")
        fraction = p.scaled_revoked(0.01) / p.scaled_certs(0.01)
        assert abs(fraction - p.revoked_fraction) < 0.01

    def test_full_scale_keeps_crl_counts(self):
        assert profile("GoDaddy").scaled_crl_count(1.0) == 322

    def test_shards_scale_slower_than_certs(self):
        p = profile("GoDaddy")
        cert_ratio = p.scaled_certs(0.01) / p.observed_certs
        shard_ratio = p.scaled_crl_count(0.01) / p.crl_count
        assert shard_ratio > cert_ratio
