"""CertificateAuthority tests: issuance, revocation, hierarchy."""

from __future__ import annotations

import datetime

import pytest

from repro.ca.authority import CertificateAuthority
from repro.pki.keys import KeyPair
from repro.pki.verify import VerificationStatus, verify_chain
from repro.revocation.reason import ReasonCode

UTC = datetime.timezone.utc
NB = datetime.datetime(2014, 1, 1, tzinfo=UTC)
NA = datetime.datetime(2016, 1, 1, tzinfo=UTC)
NOW = datetime.datetime(2015, 3, 1, tzinfo=UTC)


@pytest.fixture()
def root():
    return CertificateAuthority.create_root(
        "Authority Root",
        "auth-root",
        NB,
        NA,
        crl_base_url="http://crl.auth.example",
        ocsp_url="http://ocsp.auth.example/q",
    )


class TestRoots:
    def test_root_is_self_signed_ca(self, root):
        assert root.certificate.is_self_signed
        assert root.certificate.is_ca

    def test_root_has_no_revocation_pointers(self, root):
        # §3.2 footnote 9: roots can only be revoked by store removal.
        assert not root.certificate.has_revocation_info


class TestIssuance:
    def test_leaf_fields(self, root):
        leaf = root.issue_leaf(
            "leaf.example", KeyPair.generate("l").public_key, NB, NA
        )
        assert leaf.subject.common_name == "leaf.example"
        assert leaf.issuer == root.name
        assert not leaf.is_ca
        assert leaf.crl_urls and leaf.ocsp_urls

    def test_serials_unique(self, root):
        serials = {
            root.issue_leaf(
                f"s{i}.example", KeyPair.generate(f"s{i}").public_key, NB, NA
            ).serial_number
            for i in range(20)
        }
        assert len(serials) == 20

    def test_ev_leaf(self, root):
        leaf = root.issue_leaf(
            "ev.example", KeyPair.generate("ev").public_key, NB, NA, ev=True
        )
        assert leaf.is_ev

    def test_optional_pointers(self, root):
        bare = root.issue_leaf(
            "bare.example", KeyPair.generate("bare").public_key, NB, NA,
            include_crl=False, include_ocsp=False,
        )
        assert not bare.has_revocation_info

    def test_ledger_records(self, root):
        leaf = root.issue_leaf("r.example", KeyPair.generate("r").public_key, NB, NA)
        record = root.record_for(leaf.serial_number)
        assert record is not None
        assert not record.is_revoked


class TestHierarchy:
    def test_intermediate_chain_verifies(self, root):
        intermediate = root.create_intermediate("Sub CA", "auth-sub", NB, NA)
        leaf = intermediate.issue_leaf(
            "deep.example", KeyPair.generate("deep").public_key, NB, NA,
            include_crl=False, include_ocsp=False,
        )
        chain = [leaf, intermediate.certificate, root.certificate]
        status = verify_chain(chain, {root.certificate.fingerprint})
        assert status is VerificationStatus.OK

    def test_intermediate_pointers_name_parent_channels(self, root):
        intermediate = root.create_intermediate("Sub CA", "auth-sub2", NB, NA)
        cert = intermediate.certificate
        assert cert.crl_urls[0].startswith("http://crl.auth.example")
        assert cert.ocsp_urls == ("http://ocsp.auth.example/q",)

    def test_parent_can_revoke_child(self, root):
        intermediate = root.create_intermediate("Sub CA", "auth-sub3", NB, NA)
        serial = intermediate.certificate.serial_number
        root.revoke(serial, NOW, ReasonCode.CA_COMPROMISE)
        assert root.record_for(serial).is_revoked


class TestRevocation:
    def test_revoke_updates_everything(self, root):
        leaf = root.issue_leaf("v.example", KeyPair.generate("v").public_key, NB, NA)
        root.revoke(leaf.serial_number, NOW, ReasonCode.KEY_COMPROMISE)
        record = root.record_for(leaf.serial_number)
        assert record.revoked_at == NOW
        assert record.revocation_reason is ReasonCode.KEY_COMPROMISE
        # CRL view reflects it.
        view = root.crl_publisher.view(record.crl_url, NOW)
        assert view.is_revoked(leaf.serial_number)
        # OCSP responder reflects it.
        from repro.revocation.ocsp import CertStatus, OcspRequest

        response = root.ocsp_responder.respond(
            OcspRequest(root.issuer_key_hash, leaf.serial_number), NOW
        )
        assert response.cert_status is CertStatus.REVOKED
        assert response.revocation_reason is ReasonCode.KEY_COMPROMISE

    def test_revoke_is_idempotent(self, root):
        leaf = root.issue_leaf("i.example", KeyPair.generate("i").public_key, NB, NA)
        root.revoke(leaf.serial_number, NOW)
        root.revoke(leaf.serial_number, NOW + datetime.timedelta(days=1))
        assert root.record_for(leaf.serial_number).revoked_at == NOW

    def test_revoke_unknown_serial_raises(self, root):
        with pytest.raises(KeyError):
            root.revoke(123456, NOW)

    def test_revocation_not_visible_before_date(self, root):
        leaf = root.issue_leaf("f.example", KeyPair.generate("f").public_key, NB, NA)
        future = NOW + datetime.timedelta(days=30)
        root.revoke(leaf.serial_number, future)
        record = root.record_for(leaf.serial_number)
        assert not record.is_revoked_at(NOW)
        assert record.is_revoked_at(future)

    def test_revoked_records_listing(self, root):
        a = root.issue_leaf("ra.example", KeyPair.generate("ra").public_key, NB, NA)
        root.issue_leaf("rb.example", KeyPair.generate("rb").public_key, NB, NA)
        root.revoke(a.serial_number, NOW)
        assert {r.serial_number for r in root.revoked_records()} >= {a.serial_number}
