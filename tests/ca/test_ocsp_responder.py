"""OCSP responder tests."""

from __future__ import annotations

import datetime

import pytest

from repro.ca.ocsp_responder import OcspResponder
from repro.pki.keys import KeyPair
from repro.revocation.ocsp import CertStatus, OcspRequest, OcspResponseStatus
from repro.revocation.reason import ReasonCode

UTC = datetime.timezone.utc
NOW = datetime.datetime(2015, 3, 1, 10, 30, tzinfo=UTC)


@pytest.fixture()
def responder_setup():
    keys = KeyPair.generate("resp-ca")
    ledger = {}

    def lookup(serial):
        return ledger.get(serial)

    responder = OcspResponder(
        responder_keys=keys,
        issuer_key_hash=keys.key_id,
        status_lookup=lookup,
    )
    return responder, keys, ledger


class TestResponder:
    def test_good(self, responder_setup):
        responder, keys, ledger = responder_setup
        ledger[5] = (None, None)
        response = responder.respond(OcspRequest(keys.key_id, 5), NOW)
        assert response.cert_status is CertStatus.GOOD
        assert response.verify_signature(keys.public_key)
        assert responder.queries_served == 1

    def test_revoked_with_reason(self, responder_setup):
        responder, keys, ledger = responder_setup
        revoked_at = NOW - datetime.timedelta(days=2)
        ledger[5] = (revoked_at, ReasonCode.KEY_COMPROMISE)
        response = responder.respond(OcspRequest(keys.key_id, 5), NOW)
        assert response.cert_status is CertStatus.REVOKED
        assert response.revocation_time == revoked_at

    def test_future_revocation_still_good(self, responder_setup):
        responder, keys, ledger = responder_setup
        ledger[5] = (NOW + datetime.timedelta(days=2), None)
        response = responder.respond(OcspRequest(keys.key_id, 5), NOW)
        assert response.cert_status is CertStatus.GOOD

    def test_unknown_serial(self, responder_setup):
        responder, keys, _ = responder_setup
        response = responder.respond(OcspRequest(keys.key_id, 404), NOW)
        assert response.cert_status is CertStatus.UNKNOWN

    def test_wrong_issuer_unauthorized(self, responder_setup):
        responder, keys, _ = responder_setup
        other = KeyPair.generate("other")
        response = responder.respond(OcspRequest(other.key_id, 5), NOW)
        assert response.response_status is OcspResponseStatus.UNAUTHORIZED

    def test_force_unknown(self, responder_setup):
        responder, keys, ledger = responder_setup
        ledger[5] = (None, None)
        responder.force_unknown = True
        response = responder.respond(OcspRequest(keys.key_id, 5), NOW)
        assert response.cert_status is CertStatus.UNKNOWN

    def test_validity_window(self, responder_setup):
        responder, keys, ledger = responder_setup
        ledger[5] = (None, None)
        response = responder.respond(OcspRequest(keys.key_id, 5), NOW)
        assert response.next_update - response.this_update == responder.validity_period
        # OCSP responses are cacheable for days, longer than most CRLs.
        assert response.next_update - response.this_update >= datetime.timedelta(days=1)
