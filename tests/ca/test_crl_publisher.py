"""CRL publisher tests: sharding, views, publication windows."""

from __future__ import annotations

import datetime

import pytest

from repro.ca.crl_publisher import CrlPublisher
from repro.pki.keys import KeyPair
from repro.pki.name import Name
from repro.revocation.reason import ReasonCode

UTC = datetime.timezone.utc
NOW = datetime.datetime(2015, 3, 1, 10, 30, tzinfo=UTC)


@pytest.fixture()
def publisher():
    return CrlPublisher(
        issuer_name=Name.make("Pub CA"),
        issuer_keys=KeyPair.generate("pub-ca"),
        base_url="http://crl.pub.example",
        shard_count=4,
    )


class TestSharding:
    def test_shard_count(self, publisher):
        assert len(publisher.urls) == 4
        assert len(set(publisher.urls)) == 4

    def test_assignment_balances(self, publisher):
        for serial in range(100):
            publisher.assign(serial)
        sizes = [len(s.assigned_serials) for s in publisher.shards]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_for(self, publisher):
        url = publisher.assign(42)
        assert publisher.shard_for(42).url == url
        assert publisher.shard_for(999) is None

    def test_shard_count_floor(self):
        with pytest.raises(ValueError):
            CrlPublisher(
                Name.make("x"), KeyPair.generate("x"), "http://x", shard_count=0
            )


class TestRevocationVisibility:
    def test_record_and_view(self, publisher):
        url = publisher.assign(7)
        not_after = NOW + datetime.timedelta(days=200)
        publisher.record_revocation(7, NOW, ReasonCode.UNSPECIFIED, not_after)
        view = publisher.view(url, NOW + datetime.timedelta(days=1))
        assert view.is_revoked(7)
        assert view.entry_count == 1

    def test_entry_not_visible_before_revocation(self, publisher):
        url = publisher.assign(7)
        publisher.record_revocation(
            7, NOW, None, NOW + datetime.timedelta(days=200)
        )
        early = publisher.view(url, NOW - datetime.timedelta(days=1))
        assert not early.is_revoked(7)

    def test_entry_dropped_after_cert_expiry(self, publisher):
        url = publisher.assign(7)
        not_after = NOW + datetime.timedelta(days=10)
        publisher.record_revocation(7, NOW, None, not_after)
        late = publisher.view(url, not_after + datetime.timedelta(days=1))
        assert not late.is_revoked(7)

    def test_unassigned_serial_raises(self, publisher):
        with pytest.raises(KeyError):
            publisher.record_revocation(123, NOW, None, NOW)


class TestPublication:
    def test_window_covers_now(self, publisher):
        this_update, next_update = publisher.window(NOW)
        assert this_update <= NOW < next_update
        assert next_update - this_update == publisher.reissue_period

    def test_encode_real_crl(self, publisher):
        url = publisher.assign(5)
        publisher.record_revocation(5, NOW, None, NOW + datetime.timedelta(days=90))
        crl = publisher.encode(url, NOW + datetime.timedelta(hours=1))
        assert crl.is_revoked(5)
        assert not crl.is_expired(NOW + datetime.timedelta(hours=1))
        assert crl.verify_signature(publisher._keys.public_key)

    def test_crl_number_increments(self, publisher):
        url = publisher.urls[0]
        first = publisher.encode(url, NOW)
        second = publisher.encode(url, NOW + datetime.timedelta(days=1))
        assert second.crl_number == first.crl_number + 1

    def test_encode_all(self, publisher):
        crls = publisher.encode_all(NOW)
        assert len(crls) == 4
        assert {crl.url for crl in crls} == set(publisher.urls)

    def test_sharding_reduces_per_crl_size(self):
        """The §5.2/§9 point: more shards, smaller per-client downloads."""
        keys = KeyPair.generate("shard-size")
        name = Name.make("Shard CA")

        def total_and_max(shards: int) -> int:
            publisher = CrlPublisher(name, keys, "http://c.example", shard_count=shards)
            for serial in range(300):
                publisher.assign(serial)
                publisher.record_revocation(
                    serial, NOW, None, NOW + datetime.timedelta(days=365)
                )
            return max(
                crl.encoded_size
                for crl in publisher.encode_all(NOW + datetime.timedelta(hours=1))
            )

        assert total_and_max(10) < total_and_max(1) / 4
