"""StrictClient reference behaviour: the §2.3 ideal, for contrast."""

from __future__ import annotations

import pytest

from repro.browsers.strict import StrictClient
from repro.browsers.testsuite import BrowserTestHarness, generate_test_suite


@pytest.fixture(scope="module")
def outcomes():
    harness = BrowserTestHarness()
    return harness.run_suite(StrictClient(os="linux"), generate_test_suite())


class TestStrictClient:
    def test_catches_every_revocation(self, outcomes):
        revoked = [o for o in outcomes if o.case.family == "revoked"]
        assert all(o.rejected for o in revoked)

    def test_hard_fails_every_unavailability(self, outcomes):
        unavailable = [
            o
            for o in outcomes
            if o.case.family in ("unavailable", "both_unavailable")
        ]
        assert all(o.rejected for o in unavailable)

    def test_detects_revocation_via_fallback(self, outcomes):
        fallback = [o for o in outcomes if o.case.family == "fallback"]
        assert all(o.rejected for o in fallback)

    def test_accepts_all_baselines(self, outcomes):
        baseline = [o for o in outcomes if o.case.family == "baseline"]
        assert all(not o.rejected for o in baseline)

    def test_respects_revoked_staples(self, outcomes):
        staple_revoked = [
            o for o in outcomes if o.case.staple_status == "revoked"
        ]
        assert all(o.rejected for o in staple_revoked)

    def test_perfect_score(self, outcomes):
        """StrictClient passes every one of the 244 cases -- the bar no
        real browser reaches (paper §6.5)."""
        # The `unknown` staple case counts as pass either way: rejecting
        # an unknown staple is RFC-correct even with a live good responder.
        failures = [
            o for o in outcomes if not o.passed and o.case.staple_status != "unknown"
        ]
        assert failures == []
