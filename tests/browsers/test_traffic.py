"""Network-trace capture and per-browser traffic report tests."""

from __future__ import annotations

import pytest

from repro.browsers.desktop import Chrome, InternetExplorer, Safari
from repro.browsers.mobile import MobileSafari
from repro.browsers.testsuite import BrowserTestHarness, generate_test_suite
from repro.browsers.traffic import traffic_report


@pytest.fixture(scope="module")
def sample_cases():
    suite = generate_test_suite()
    # A representative slice keeps this fast: every family, both protocols.
    return [c for i, c in enumerate(suite) if i % 7 == 0]


@pytest.fixture(scope="module")
def report(sample_cases):
    browsers = [
        InternetExplorer(version="11.0"),
        Safari(),
        Chrome(os="osx"),
        MobileSafari("8"),
    ]
    return traffic_report(browsers, sample_cases)


class TestTraceCapture:
    def test_checking_browser_generates_traffic(self, sample_cases):
        harness = BrowserTestHarness()
        outcome = harness.run_case(InternetExplorer(version="11.0"), sample_cases[5])
        assert outcome.revocation_fetches >= 0  # trace fields populated
        total = sum(
            harness.run_case(InternetExplorer(version="11.0"), c).bytes_downloaded
            for c in sample_cases[:8]
        )
        assert total > 0

    def test_mobile_browser_generates_none(self, sample_cases):
        harness = BrowserTestHarness()
        for case in sample_cases[:8]:
            outcome = harness.run_case(MobileSafari("8"), case)
            assert outcome.bytes_downloaded == 0
            assert outcome.revocation_fetches == 0


class TestTrafficReport:
    def test_ordering_checkers_pay_most(self, report):
        by_label = {row.browser_label: row for row in report}
        ie = next(v for k, v in by_label.items() if k.startswith("IE"))
        mobile = next(v for k, v in by_label.items() if "Mobile" in k)
        chrome = next(v for k, v in by_label.items() if k.startswith("Chrome"))
        assert ie.bytes_downloaded > chrome.bytes_downloaded
        assert mobile.bytes_downloaded == 0

    def test_traffic_buys_detections(self, report):
        for row in report:
            if row.bytes_downloaded == 0:
                assert row.revocations_caught == 0 or row.browser_label.startswith(
                    "Chrome"
                )

    def test_bytes_per_catch_finite_for_checkers(self, report):
        ie = next(row for row in report if row.browser_label.startswith("IE"))
        assert 0 < ie.bytes_per_catch < float("inf")

    def test_report_covers_all_browsers(self, report, sample_cases):
        assert len(report) == 4
        assert all(row.cases == len(sample_cases) for row in report)
