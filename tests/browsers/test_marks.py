"""Unit tests for Table 2 mark classification logic."""

from __future__ import annotations

from dataclasses import dataclass

from repro.browsers.table2 import Mark, _pass_fail_mark


@dataclass
class FakeModel:
    os: str = "osx"


@dataclass
class FakeCase:
    ev: bool = False


@dataclass
class FakeOutcome:
    rejected: bool
    warned: bool = False
    case: FakeCase = None

    def __post_init__(self):
        if self.case is None:
            self.case = FakeCase()


def cell(*entries):
    return [(model, outcome) for model, outcome in entries]


class TestPassFailMark:
    def test_all_pass(self):
        outcomes = cell(
            (FakeModel(), FakeOutcome(True)), (FakeModel(), FakeOutcome(True))
        )
        assert _pass_fail_mark(outcomes) is Mark.YES

    def test_all_fail(self):
        outcomes = cell(
            (FakeModel(), FakeOutcome(False)), (FakeModel(), FakeOutcome(False))
        )
        assert _pass_fail_mark(outcomes) is Mark.NO

    def test_empty_is_dash(self):
        assert _pass_fail_mark([]) is Mark.DASH

    def test_ev_split(self):
        outcomes = cell(
            (FakeModel(), FakeOutcome(True, case=FakeCase(ev=True))),
            (FakeModel(), FakeOutcome(False, case=FakeCase(ev=False))),
        )
        assert _pass_fail_mark(outcomes) is Mark.EV

    def test_os_split(self):
        outcomes = cell(
            (FakeModel(os="linux"), FakeOutcome(True)),
            (FakeModel(os="windows"), FakeOutcome(True)),
            (FakeModel(os="osx"), FakeOutcome(False)),
        )
        assert _pass_fail_mark(outcomes) is Mark.LW

    def test_warn_only_is_alert(self):
        outcomes = cell(
            (FakeModel(), FakeOutcome(False, warned=True)),
            (FakeModel(), FakeOutcome(False, warned=True)),
        )
        assert _pass_fail_mark(outcomes) is Mark.ALERT

    def test_pass_and_warn_mix_is_alert(self):
        # IE 10's leaf-unavailable pattern: rejects without intermediates,
        # warns with them.
        outcomes = cell(
            (FakeModel(), FakeOutcome(True)),
            (FakeModel(), FakeOutcome(False, warned=True)),
        )
        assert _pass_fail_mark(outcomes) is Mark.ALERT

    def test_uncorrelated_partial_is_no(self):
        # Opera 31's leaf-unavailable pattern: passes only the no-
        # intermediate chains, which is neither EV- nor OS-correlated.
        outcomes = cell(
            (FakeModel(), FakeOutcome(True, case=FakeCase(ev=False))),
            (FakeModel(), FakeOutcome(False, case=FakeCase(ev=False))),
            (FakeModel(), FakeOutcome(False, case=FakeCase(ev=True))),
        )
        assert _pass_fail_mark(outcomes) is Mark.NO

    def test_ev_beats_lw_when_both_could_apply(self):
        # A single EV-passing model on linux: the EV rule fires first.
        outcomes = cell(
            (FakeModel(os="linux"), FakeOutcome(True, case=FakeCase(ev=True))),
            (FakeModel(os="linux"), FakeOutcome(False, case=FakeCase(ev=False))),
        )
        assert _pass_fail_mark(outcomes) is Mark.EV
