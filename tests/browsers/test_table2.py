"""Table 2 end-to-end: the computed matrix must match the paper."""

from __future__ import annotations

import pytest

from repro.browsers.table2 import (
    PAPER_TABLE2,
    ROWS,
    Mark,
    compute_table2,
    diff_against_paper,
    render_table2,
)


@pytest.fixture(scope="module")
def matrix():
    return compute_table2()


class TestTable2:
    def test_every_testable_cell_matches_paper(self, matrix):
        mismatches = diff_against_paper(matrix)
        assert mismatches == []

    def test_row_and_column_counts(self, matrix):
        assert set(matrix) == {row.key for row in ROWS}
        assert all(len(cells) == 14 for cells in matrix.values())
        assert set(PAPER_TABLE2) == {row.key for row in ROWS}

    def test_mobile_columns_never_pass_checks(self, matrix):
        check_rows = [row.key for row in ROWS if "/" in row.key]
        for key in check_rows:
            for column in (10, 11, 12, 13):  # the four mobile columns
                assert matrix[key][column] is Mark.NO

    def test_nobody_is_fully_correct(self, matrix):
        """§6.5: no browser in default config passes every row."""
        for column in range(14):
            marks = {matrix[row.key][column] for row in ROWS}
            assert marks != {Mark.YES}

    def test_int2plus_unavailable_universally_soft_fails(self, matrix):
        assert set(matrix["crl/int2plus/unavailable"]) == {Mark.NO}
        assert set(matrix["ocsp/int2plus/unavailable"]) == {Mark.NO}

    def test_firefox_rejects_unknown(self, matrix):
        assert matrix["reject_unknown"][3] is Mark.YES

    def test_android_requests_but_ignores_staples(self, matrix):
        assert matrix["request_staple"][11] is Mark.IGNORES
        assert matrix["request_staple"][12] is Mark.IGNORES

    def test_render_contains_all_rows(self, matrix):
        text = render_table2(matrix)
        for row in ROWS:
            assert row.label in text
