"""Per-browser behaviour tests: each paper statement from §6.3-§6.4."""

from __future__ import annotations

import datetime

import pytest

from repro.browsers.certgen import TestPki
from repro.browsers.desktop import (
    Chrome,
    Firefox,
    InternetExplorer,
    Opera12,
    Opera31,
    Safari,
)
from repro.browsers.mobile import AndroidBrowser, MobileIE, MobileSafari
from repro.browsers.policy import ChainContext
from repro.revocation.ocsp import CertStatus

NOW = datetime.datetime(2015, 3, 31, 12, 0, tzinfo=datetime.timezone.utc)

_counter = 0


def run(browser, n_ints=1, protocols=("ocsp",), ev=False, setup=None):
    global _counter
    _counter += 1
    pki = TestPki(f"bx{_counter}", n_ints, set(protocols), ev=ev)
    if setup:
        setup(pki)
    chain, staple = pki.handshake(status_request=browser.requests_staple())
    ctx = ChainContext(chain=chain, staple=staple, checker=pki.checker(), at=NOW)
    return browser.validate(ctx)


class TestChrome:
    def test_osx_non_ev_checks_nothing(self):
        result = run(Chrome(os="osx"), setup=lambda p: p.revoke(0))
        assert result.accepted and not result.checks

    def test_osx_ev_catches_revoked_leaf(self):
        result = run(Chrome(os="osx"), ev=True, setup=lambda p: p.revoke(0))
        assert not result.accepted

    def test_windows_non_ev_checks_int1_crl_only(self):
        # CRL-only chain, revoked int1 -> caught even for non-EV.
        result = run(
            Chrome(os="windows"), protocols=("crl",), setup=lambda p: p.revoke(1)
        )
        assert not result.accepted
        # But a revoked CRL-only *leaf* is missed for non-EV.
        result = run(
            Chrome(os="windows"), protocols=("crl",), setup=lambda p: p.revoke(0)
        )
        assert result.accepted

    def test_windows_non_ev_skips_ocsp(self):
        result = run(
            Chrome(os="windows"), protocols=("ocsp",), setup=lambda p: p.revoke(1)
        )
        assert result.accepted

    def test_ev_crl_fallback(self):
        def setup(pki):
            pki.revoke(0)
            pki.make_unavailable(0, "ocsp", "no_response")

        result = run(Chrome(os="osx"), protocols=("crl", "ocsp"), ev=True, setup=setup)
        assert not result.accepted

    def test_unknown_trusted_incorrectly(self):
        result = run(
            Chrome(os="osx"), ev=True,
            setup=lambda p: p.make_unavailable(0, "ocsp", "unknown"),
        )
        assert result.accepted

    def test_int1_crl_unavailable_rejected_for_ev_on_osx(self):
        result = run(
            Chrome(os="osx"), protocols=("crl",), ev=True,
            setup=lambda p: p.make_unavailable(1, "crl", "nxdomain"),
        )
        assert not result.accepted

    def test_int1_crl_unavailable_rejected_for_all_on_windows(self):
        result = run(
            Chrome(os="windows"), protocols=("crl",), ev=False,
            setup=lambda p: p.make_unavailable(1, "crl", "nxdomain"),
        )
        assert not result.accepted

    def test_staple_respected_only_on_windows(self):
        def setup(pki):
            pki.revoke(0)
            pki.set_staple(CertStatus.REVOKED, firewall_responder=True)

        assert not run(Chrome(os="windows"), setup=setup).accepted
        assert run(Chrome(os="osx"), setup=setup).accepted


class TestFirefox:
    def test_never_checks_crls(self):
        result = run(Firefox(os="linux"), protocols=("crl",), setup=lambda p: p.revoke(0))
        assert result.accepted and not result.checks

    def test_non_ev_checks_leaf_ocsp_only(self):
        assert not run(Firefox(os="osx"), setup=lambda p: p.revoke(0)).accepted
        assert run(Firefox(os="osx"), setup=lambda p: p.revoke(1)).accepted

    def test_ev_checks_all_ocsp(self):
        assert not run(Firefox(os="osx"), ev=True, setup=lambda p: p.revoke(1)).accepted

    def test_rejects_unknown(self):
        result = run(
            Firefox(os="windows"),
            setup=lambda p: p.make_unavailable(0, "ocsp", "unknown"),
        )
        assert not result.accepted

    def test_soft_fails_on_unavailable(self):
        result = run(
            Firefox(os="linux"),
            setup=lambda p: p.make_unavailable(0, "ocsp", "no_response"),
        )
        assert result.accepted

    def test_respects_revoked_staple(self):
        def setup(pki):
            pki.revoke(0)
            pki.set_staple(CertStatus.REVOKED, firewall_responder=True)

        assert not run(Firefox(os="osx"), setup=setup).accepted


class TestOpera:
    def test_opera12_crl_all_elements(self):
        assert not run(
            Opera12(os="osx"), protocols=("crl",), n_ints=3, setup=lambda p: p.revoke(3)
        ).accepted

    def test_opera12_ocsp_leaf_only(self):
        assert not run(Opera12(os="osx"), setup=lambda p: p.revoke(0)).accepted
        assert run(Opera12(os="osx"), setup=lambda p: p.revoke(1)).accepted

    def test_opera12_rejects_unknown(self):
        result = run(
            Opera12(os="linux"),
            setup=lambda p: p.make_unavailable(0, "ocsp", "unknown"),
        )
        assert not result.accepted

    def test_opera31_first_element_hard_fail_crl(self):
        result = run(
            Opera31(os="osx"), protocols=("crl",),
            setup=lambda p: p.make_unavailable(1, "crl", "no_response"),
        )
        assert not result.accepted

    def test_opera31_leaf_hard_fail_only_without_intermediates(self):
        result = run(
            Opera31(os="osx"), protocols=("crl",), n_ints=0,
            setup=lambda p: p.make_unavailable(0, "crl", "no_response"),
        )
        assert not result.accepted
        result = run(
            Opera31(os="osx"), protocols=("crl",), n_ints=1,
            setup=lambda p: p.make_unavailable(0, "crl", "no_response"),
        )
        assert result.accepted

    def test_opera31_ocsp_hard_fail_linux_windows_only(self):
        def setup(pki):
            pki.make_unavailable(1, "ocsp", "no_response")

        assert not run(Opera31(os="linux"), setup=setup).accepted
        assert not run(Opera31(os="windows"), setup=setup).accepted
        assert run(Opera31(os="osx"), setup=setup).accepted


class TestSafari:
    def test_checks_whole_chain_both_protocols(self):
        assert not run(Safari(), protocols=("crl",), n_ints=2, setup=lambda p: p.revoke(2)).accepted
        assert not run(Safari(), protocols=("ocsp",), setup=lambda p: p.revoke(0)).accepted

    def test_crl_fallback(self):
        def setup(pki):
            pki.revoke(0)
            pki.make_unavailable(0, "ocsp", "no_response")

        assert not run(Safari(), protocols=("crl", "ocsp"), setup=setup).accepted

    def test_hard_fail_requires_crl_pointer(self):
        # First-intermediate unavailable: rejects on CRL chains...
        result = run(
            Safari(), protocols=("crl",),
            setup=lambda p: p.make_unavailable(1, "crl", "http404"),
        )
        assert not result.accepted
        # ...but accepts on OCSP-only chains.
        result = run(
            Safari(), protocols=("ocsp",),
            setup=lambda p: p.make_unavailable(1, "ocsp", "http404"),
        )
        assert result.accepted

    def test_does_not_request_staples(self):
        assert not Safari().requests_staple()


class TestInternetExplorer:
    @pytest.mark.parametrize("version", ["7.0", "8.0", "9.0", "10.0", "11.0"])
    def test_checks_everything(self, version):
        browser = InternetExplorer(version=version)
        assert not run(browser, protocols=("crl",), n_ints=2, setup=lambda p: p.revoke(2)).accepted

    def test_int1_unavailable_rejected_all_versions(self):
        for version in ("7.0", "10.0", "11.0"):
            result = run(
                InternetExplorer(version=version),
                setup=lambda p: p.make_unavailable(1, "ocsp", "no_response"),
            )
            assert not result.accepted, version

    def test_leaf_unavailable_version_split(self):
        def setup(pki):
            pki.make_unavailable(0, "ocsp", "no_response")

        assert run(InternetExplorer(version="9.0"), setup=setup).accepted
        result10 = run(InternetExplorer(version="10.0"), setup=setup)
        assert result10.accepted and result10.warned
        assert not run(InternetExplorer(version="11.0"), setup=setup).accepted


class TestMobile:
    @pytest.mark.parametrize(
        "browser",
        [
            MobileSafari("8"),
            AndroidBrowser("Browser", "5.1"),
            AndroidBrowser("Chrome", "4.4"),
            MobileIE(),
        ],
        ids=["ios", "android-stock", "android-chrome", "wp-ie"],
    )
    def test_never_checks_anything(self, browser):
        result = run(browser, setup=lambda p: p.revoke(0))
        assert result.accepted
        assert not result.checks

    def test_android_ignores_revoked_staple(self):
        def setup(pki):
            pki.revoke(0)
            pki.set_staple(CertStatus.REVOKED, firewall_responder=True)

        browser = AndroidBrowser("Chrome", "5.1")
        result = run(browser, setup=setup)
        assert result.accepted  # staple requested but ignored
        assert result.staple_requested
        assert not result.staple_used

    def test_ios_does_not_request_staples(self):
        assert not MobileSafari("7").requests_staple()
