"""Failure-mode equivalence: the §6.1 unavailability modes.

The paper tests four distinct ways revocation information can be
unavailable (NXDOMAIN, HTTP 404, no response, OCSP `unknown`).  For
every browser the first three must be policy-equivalent (they all mean
"could not obtain"), while `unknown` is different -- it is an
authoritative answer some browsers mishandle.
"""

from __future__ import annotations

import datetime

import pytest

from repro.browsers.certgen import TestPki
from repro.browsers.desktop import Firefox, InternetExplorer, Opera31, Safari
from repro.browsers.policy import ChainContext

NOW = datetime.datetime(2015, 3, 31, 12, 0, tzinfo=datetime.timezone.utc)

_counter = [0]


def outcome(browser, protocol: str, mode: str, target: int = 1) -> bool:
    """True if the connection is accepted."""
    _counter[0] += 1
    pki = TestPki(f"fm{_counter[0]}", 1, {protocol}, ev=False)
    pki.make_unavailable(target, protocol, mode)
    chain, staple = pki.handshake(status_request=browser.requests_staple())
    ctx = ChainContext(chain, staple, pki.checker(), NOW)
    return browser.validate(ctx).accepted


TRANSPORT_MODES = ("nxdomain", "http404", "no_response")


@pytest.mark.parametrize(
    "browser_factory",
    [
        lambda: Safari(),
        lambda: InternetExplorer(version="9.0"),
        lambda: InternetExplorer(version="11.0"),
        lambda: Opera31(os="windows"),
        lambda: Firefox(os="linux"),
    ],
    ids=["safari", "ie9", "ie11", "opera31-win", "firefox"],
)
class TestTransportModeEquivalence:
    def test_crl_modes_equivalent(self, browser_factory):
        browser = browser_factory()
        results = {mode: outcome(browser, "crl", mode) for mode in TRANSPORT_MODES}
        assert len(set(results.values())) == 1, results

    def test_ocsp_transport_modes_equivalent(self, browser_factory):
        browser = browser_factory()
        results = {mode: outcome(browser, "ocsp", mode) for mode in TRANSPORT_MODES}
        assert len(set(results.values())) == 1, results


class TestUnknownIsDifferent:
    def test_firefox_distinguishes_unknown_from_transport_failure(self):
        browser = Firefox(os="linux")
        # Transport failure on the leaf: soft-fail accept.
        assert outcome(browser, "ocsp", "no_response", target=0)
        # Authoritative `unknown` on the leaf: rejected.
        assert not outcome(browser, "ocsp", "unknown", target=0)

    def test_ie_conflates_unknown_with_good(self):
        browser = InternetExplorer(version="11.0")
        # IE treats unknown as trusted (incorrect), unlike a transport
        # failure on the leaf which it rejects.
        assert outcome(browser, "ocsp", "unknown", target=0)
        assert not outcome(browser, "ocsp", "no_response", target=0)
