"""Test-suite PKI fixture tests."""

from __future__ import annotations

import datetime

import pytest

from repro.browsers.certgen import TestPki
from repro.pki.verify import VerificationStatus, verify_chain
from repro.revocation.checker import CheckOutcome, RevocationChecker
from repro.revocation.ocsp import CertStatus

NOW = datetime.datetime(2015, 3, 31, 12, 0, tzinfo=datetime.timezone.utc)


class TestChainConstruction:
    @pytest.mark.parametrize("n_ints", [0, 1, 2, 3])
    def test_chain_shape(self, n_ints):
        pki = TestPki(f"shape{n_ints}", n_ints, {"crl", "ocsp"}, ev=False)
        assert len(pki.chain) == n_ints + 2
        assert pki.chain[0] is pki.leaf
        assert pki.chain[-1].is_self_signed
        status = verify_chain(list(pki.chain), pki.trusted_roots)
        assert status is VerificationStatus.OK

    def test_protocol_pointers(self):
        crl_only = TestPki("crl-only", 1, {"crl"}, ev=False)
        assert crl_only.leaf.crl_urls and not crl_only.leaf.ocsp_urls
        ocsp_only = TestPki("ocsp-only", 1, {"ocsp"}, ev=False)
        assert ocsp_only.leaf.ocsp_urls and not ocsp_only.leaf.crl_urls

    def test_ev_leaf(self):
        assert TestPki("ev", 1, {"ocsp"}, ev=True).leaf.is_ev

    def test_issuer_ca_of(self):
        pki = TestPki("issuer", 2, {"crl"}, ev=False)
        assert pki.issuer_ca_of(0).certificate == pki.chain[1]
        assert pki.issuer_ca_of(1).certificate == pki.chain[2]
        with pytest.raises(ValueError):
            pki.issuer_ca_of(len(pki.chain) - 1)

    def test_invalid_protocols_rejected(self):
        with pytest.raises(ValueError):
            TestPki("bad", 1, {"carrier-pigeon"}, ev=False)


class TestScenarios:
    def test_revoked_leaf_visible_via_crl(self):
        pki = TestPki("rev-crl", 1, {"crl"}, ev=False)
        pki.revoke(0)
        checker = pki.checker()
        result = checker.check_crl(pki.leaf, NOW)
        assert result.outcome is CheckOutcome.REVOKED

    def test_revoked_intermediate_visible_via_ocsp(self):
        pki = TestPki("rev-ocsp", 1, {"ocsp"}, ev=False)
        pki.revoke(1)
        checker = pki.checker()
        int1 = pki.chain[1]
        result = checker.check_ocsp(int1, pki.chain[2].spki_hash, NOW)
        assert result.outcome is CheckOutcome.REVOKED

    @pytest.mark.parametrize("mode", ["nxdomain", "http404", "no_response"])
    def test_unavailable_modes(self, mode):
        pki = TestPki(f"unavail-{mode}", 1, {"crl"}, ev=False)
        pki.make_unavailable(0, "crl", mode)
        result = pki.checker().check_crl(pki.leaf, NOW)
        assert result.outcome is CheckOutcome.UNAVAILABLE

    def test_unknown_mode(self):
        pki = TestPki("unknown", 1, {"ocsp"}, ev=False)
        pki.make_unavailable(0, "ocsp", "unknown")
        result = pki.checker().check_ocsp(pki.leaf, pki.chain[1].spki_hash, NOW)
        assert result.outcome is CheckOutcome.UNKNOWN

    def test_staple_served(self):
        pki = TestPki("staple", 1, {"ocsp"}, ev=False)
        pki.set_staple(CertStatus.REVOKED)
        chain, staple = pki.handshake(status_request=True)
        assert staple is not None
        assert staple.cert_status is CertStatus.REVOKED
        # Staple is signed by the leaf's issuer.
        assert staple.verify_signature(pki.issuer_ca_of(0).keys.public_key)

    def test_staple_not_served_without_request(self):
        pki = TestPki("staple2", 1, {"ocsp"}, ev=False)
        pki.set_staple(CertStatus.GOOD)
        _, staple = pki.handshake(status_request=False)
        assert staple is None

    def test_firewalled_responder(self):
        pki = TestPki("firewall", 1, {"ocsp"}, ev=False)
        pki.set_staple(CertStatus.REVOKED, firewall_responder=True)
        result = pki.checker().check_ocsp(pki.leaf, pki.chain[1].spki_hash, NOW)
        assert result.outcome is CheckOutcome.UNAVAILABLE

    def test_failures_scoped_to_target(self):
        pki = TestPki("scoped", 2, {"crl"}, ev=False)
        pki.make_unavailable(1, "crl", "no_response")
        checker = pki.checker()
        # Leaf CRL unaffected.
        assert checker.check_crl(pki.leaf, NOW).outcome is CheckOutcome.GOOD
        # Int1 CRL down.
        assert (
            checker.check_crl(pki.chain[1], NOW).outcome
            is CheckOutcome.UNAVAILABLE
        )
