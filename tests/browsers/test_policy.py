"""Policy engine tests against hand-built scenarios."""

from __future__ import annotations

import datetime

import pytest

from repro.browsers.certgen import TestPki
from repro.browsers.policy import (
    BrowserModel,
    ChainContext,
    Position,
    UnavailableAction,
)
from repro.revocation.ocsp import CertStatus

NOW = datetime.datetime(2015, 3, 31, 12, 0, tzinfo=datetime.timezone.utc)


class CheckEverything(BrowserModel):
    """A maximally strict reference browser."""

    name = "Strict"

    def requests_staple(self):
        return True

    def rejects_unknown_ocsp(self):
        return True

    def tries_crl_on_ocsp_failure(self, is_ev):
        return True

    def protocols_for(self, position, certificate, is_ev):
        if certificate.ocsp_urls:
            return ["ocsp"]
        if certificate.crl_urls:
            return ["crl"]
        return []

    def on_unavailable(self, position, protocol, certificate, is_ev, has_ints):
        return UnavailableAction.REJECT


class CheckNothing(BrowserModel):
    name = "Lax"


def make_ctx(pki: TestPki, status_request=True) -> ChainContext:
    chain, staple = pki.handshake(status_request=status_request)
    return ChainContext(chain=chain, staple=staple, checker=pki.checker(), at=NOW)


class TestPositions:
    def test_position_of(self):
        assert Position.of(0) is Position.LEAF
        assert Position.of(1) is Position.INT1
        assert Position.of(2) is Position.INT2PLUS
        assert Position.of(5) is Position.INT2PLUS


class TestEngine:
    def test_valid_chain_accepted(self):
        pki = TestPki("pe-ok", 2, {"crl", "ocsp"}, ev=False)
        result = CheckEverything().validate(make_ctx(pki))
        assert result.accepted
        assert result.performed_any_check

    def test_revoked_leaf_rejected(self):
        pki = TestPki("pe-rev0", 1, {"ocsp"}, ev=False)
        pki.revoke(0)
        result = CheckEverything().validate(make_ctx(pki))
        assert not result.accepted
        assert "revoked" in result.rejection_reason

    def test_revoked_deep_intermediate_rejected(self):
        pki = TestPki("pe-rev2", 3, {"crl"}, ev=False)
        pki.revoke(2)
        assert not CheckEverything().validate(make_ctx(pki)).accepted

    def test_unavailable_hard_fail(self):
        pki = TestPki("pe-unav", 1, {"crl"}, ev=False)
        pki.make_unavailable(0, "crl", "no_response")
        result = CheckEverything().validate(make_ctx(pki))
        assert not result.accepted
        assert "unavailable" in result.rejection_reason

    def test_unknown_rejected_when_policy_says_so(self):
        pki = TestPki("pe-unk", 1, {"ocsp"}, ev=False)
        pki.make_unavailable(0, "ocsp", "unknown")
        assert not CheckEverything().validate(make_ctx(pki)).accepted

    def test_crl_fallback_catches_revocation(self):
        pki = TestPki("pe-fb", 1, {"crl", "ocsp"}, ev=False)
        pki.revoke(0)
        pki.make_unavailable(0, "ocsp", "no_response")
        result = CheckEverything().validate(make_ctx(pki))
        assert not result.accepted
        protocols = [record.protocol for record in result.checks]
        assert "crl" in protocols  # the fallback actually ran

    def test_lax_browser_accepts_everything(self):
        pki = TestPki("pe-lax", 1, {"crl", "ocsp"}, ev=False)
        pki.revoke(0)
        result = CheckNothing().validate(make_ctx(pki))
        assert result.accepted
        assert not result.performed_any_check
        assert not result.staple_requested


class TestStapleHandling:
    def test_good_staple_satisfies_leaf(self):
        pki = TestPki("pe-st-good", 1, {"ocsp"}, ev=False)
        pki.set_staple(CertStatus.GOOD)
        result = CheckEverything().validate(make_ctx(pki))
        assert result.accepted
        assert result.staple_used
        # The leaf must not also be checked over the network.
        leaf_network_checks = [
            r for r in result.checks
            if r.position is Position.LEAF and r.protocol != "staple"
        ]
        assert not leaf_network_checks

    def test_revoked_staple_rejected_when_respected(self):
        pki = TestPki("pe-st-rev", 1, {"ocsp"}, ev=False)
        pki.revoke(0)
        pki.set_staple(CertStatus.REVOKED, firewall_responder=True)
        result = CheckEverything().validate(make_ctx(pki))
        assert not result.accepted
        assert result.staple_used

    def test_revoked_staple_discarded_when_not_respected(self):
        class Discarder(CheckEverything):
            def respects_revoked_staple(self):
                return False

            def on_unavailable(self, *args):
                return UnavailableAction.ACCEPT

        pki = TestPki("pe-st-disc", 1, {"ocsp"}, ev=False)
        pki.revoke(0)
        pki.set_staple(CertStatus.REVOKED, firewall_responder=True)
        result = Discarder().validate(make_ctx(pki))
        # Responder is firewalled, staple was discarded -> soft-fail accept.
        assert result.accepted

    def test_staple_ignored_when_not_requested(self):
        class NoStaple(CheckEverything):
            def requests_staple(self):
                return False

            def on_unavailable(self, *args):
                return UnavailableAction.ACCEPT

        pki = TestPki("pe-st-noreq", 1, {"ocsp"}, ev=False)
        pki.revoke(0)
        pki.set_staple(CertStatus.REVOKED, firewall_responder=True)
        result = NoStaple().validate(make_ctx(pki, status_request=False))
        assert result.accepted  # never saw the staple, responder firewalled
        assert not result.staple_requested

    def test_warn_action_sets_flag(self):
        class Warner(CheckEverything):
            def on_unavailable(self, *args):
                return UnavailableAction.WARN

        pki = TestPki("pe-warn", 1, {"crl"}, ev=False)
        pki.make_unavailable(0, "crl", "http404")
        result = Warner().validate(make_ctx(pki))
        assert result.accepted
        assert result.warned
