"""Test-suite generator and harness tests."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.browsers.registry import all_browsers, table2_columns
from repro.browsers.testsuite import (
    BrowserTestHarness,
    generate_test_suite,
)


@pytest.fixture(scope="module")
def suite():
    return generate_test_suite()


class TestGenerator:
    def test_exactly_244_cases(self, suite):
        # The paper: "the result is a suite of 244 different tests".
        assert len(suite) == 244

    def test_family_budget(self, suite):
        families = Counter(case.family for case in suite)
        assert families == {
            "baseline": 24,
            "revoked": 60,
            "unavailable": 140,
            "fallback": 4,
            "both_unavailable": 4,
            "stapling": 12,
        }

    def test_ids_unique(self, suite):
        assert len({case.test_id for case in suite}) == 244

    def test_ev_split_is_even(self, suite):
        assert sum(1 for case in suite if case.ev) == 122

    def test_chain_length_dimension(self, suite):
        lengths = {case.n_intermediates for case in suite}
        assert lengths == {0, 1, 2, 3}

    def test_unavailable_modes(self, suite):
        crl_modes = {
            c.failure_mode
            for c in suite
            if c.family == "unavailable" and c.protocols == frozenset({"crl"})
        }
        ocsp_modes = {
            c.failure_mode
            for c in suite
            if c.family == "unavailable" and c.protocols == frozenset({"ocsp"})
        }
        assert crl_modes == {"nxdomain", "http404", "no_response"}
        assert ocsp_modes == {"nxdomain", "http404", "no_response", "unknown"}

    def test_target_positions(self, suite):
        revoked = [c for c in suite if c.family == "revoked"]
        positions = Counter(c.target_position for c in revoked)
        # 10 positions per (protocol, ev): 4 leaf, 3 int1, 3 int2plus.
        assert positions == {"leaf": 24, "int1": 18, "int2plus": 18}

    def test_expected_reject(self, suite):
        for case in suite:
            if case.family == "baseline":
                assert not case.expected_reject
            elif case.family == "stapling":
                assert case.expected_reject == (case.staple_status == "revoked")
            else:
                assert case.expected_reject

    def test_describe_is_informative(self, suite):
        text = suite[30].describe()
        assert suite[30].family in text


class TestRegistry:
    def test_thirty_combinations(self):
        assert len(all_browsers()) == 30

    def test_fourteen_columns_cover_all_browsers(self):
        columns = table2_columns()
        assert len(columns) == 14
        total = sum(len(models) for _, models in columns)
        assert total == 30
        for label, models in columns:
            assert models, label


class TestHarness:
    def test_strict_reference_outcomes(self, suite):
        """IE 11 (the strictest tested browser) against a case sample."""
        from repro.browsers.desktop import InternetExplorer

        harness = BrowserTestHarness()
        browser = InternetExplorer(version="11.0")
        sample = [c for c in suite if c.test_id in {"t000", "t030", "t100", "t200"}]
        outcomes = [harness.run_case(browser, case) for case in sample]
        for outcome in outcomes:
            assert outcome.browser_label.startswith("IE")

    def test_baseline_accepted_by_everyone(self, suite):
        harness = BrowserTestHarness()
        baseline = [c for c in suite if c.family == "baseline"][:4]
        for browser in (all_browsers()[0], all_browsers()[-1]):
            for case in baseline:
                outcome = harness.run_case(browser, case)
                assert not outcome.rejected, (browser.label, case.describe())

    def test_mobile_fails_all_revoked_cases(self, suite):
        from repro.browsers.mobile import MobileSafari

        harness = BrowserTestHarness()
        browser = MobileSafari("8")
        revoked = [c for c in suite if c.family == "revoked"][:6]
        for case in revoked:
            assert not harness.run_case(browser, case).passed
