"""CLI contract tests: exit codes, flag precedence, and report parity.

The contract (ISSUE 5): exit 0 on success, 1 on behavioural failures
(crashed experiments, failed shape comparisons, non-empty ``--check``
diffs), 2 on usage and input errors; fault flags given after the
subcommand win over ones given before it (a parser property, not merge
code); and the ``report`` subcommand is byte-equal to
``repro.api.study.render_report`` / the ``reportgen`` module CLI.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.__main__ import main
from repro.experiments import reportgen

RUN_AVAIL = ["run", "availability", "--scale", "0.0005", "--seed", "3"]


class TestExitCodes:
    def test_list_is_0(self, capsys):
        assert main(["list"]) == 0
        assert "availability" in capsys.readouterr().out

    def test_unknown_experiment_is_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_profile_is_2_for_run_and_report(self, capsys):
        assert main(RUN_AVAIL + ["--fault-profile", "mayhem"]) == 2
        assert "unknown fault profile" in capsys.readouterr().err
        assert main(["report", "--fault-profile", "mayhem"]) == 2
        assert "unknown fault profile" in capsys.readouterr().err

    def test_missing_command_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_trace_missing_file_is_2(self, capsys):
        assert main(["trace", "/nonexistent/trace.jsonl"]) == 2
        assert "trace.jsonl" in capsys.readouterr().err

    def test_trace_requires_file_or_diff(self, capsys):
        assert main(["trace"]) == 2
        assert "required" in capsys.readouterr().err

    def test_trace_rejects_file_and_diff_together(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "meta"}\n')
        assert main(["trace", str(path), "--diff", str(path), str(path)]) == 2
        assert "not both" in capsys.readouterr().err

    def test_check_requires_diff(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "meta"}\n')
        assert main(["trace", str(path), "--check"]) == 2
        assert "--check requires --diff" in capsys.readouterr().err

    def test_check_nonempty_diff_is_1(self, tmp_path, capsys):
        # Two tiny hand-written traces that differ by one span: --check
        # must exit 1 without needing a full study run.
        span = {
            "type": "span",
            "id": 0,
            "parent": None,
            "name": "experiment",
            "start": 0,
            "end": 1,
            "attrs": {"experiment": "x"},
        }
        extra = {
            "type": "span",
            "id": 1,
            "parent": None,
            "name": "experiment",
            "start": 2,
            "end": 3,
            "attrs": {"experiment": "y"},
        }
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text(json.dumps(span) + "\n")
        b.write_text(json.dumps(span) + "\n" + json.dumps(extra) + "\n")
        assert main(["trace", "--diff", str(a), str(b), "--check"]) == 1
        out = capsys.readouterr().out
        assert "experiment[experiment=y]" in out
        # Without --check a non-empty diff still exits 0 (informational).
        assert main(["trace", "--diff", str(a), str(b)]) == 0


class TestCorpusSubcommand:
    """`repro corpus build|inspect|stat` wired through repro.api."""

    SCALE = "0.0005"

    def test_build_then_stat_then_inspect(self, tmp_path, capsys):
        directory = str(tmp_path)
        assert main(["corpus", "build", directory, "--scale", self.SCALE]) == 0
        out = capsys.readouterr().out
        assert "rebuilt        True" in out
        assert "corpus_digest" in out

        assert main(["corpus", "stat", directory]) == 0
        stat_out = capsys.readouterr().out
        assert f"scale {self.SCALE}" in stat_out

        store = next(tmp_path.glob("corpus-*.sqlite"))
        assert main(["corpus", "inspect", str(store)]) == 0
        assert str(store) in capsys.readouterr().out

    def test_rebuild_is_skipped_when_store_exists(self, tmp_path, capsys):
        directory = str(tmp_path)
        assert main(["corpus", "build", directory, "--scale", self.SCALE]) == 0
        capsys.readouterr()
        assert (
            main(
                ["corpus", "build", directory, "--scale", self.SCALE,
                 "--shards", "4"]
            )
            == 0
        )
        assert "rebuilt        False" in capsys.readouterr().out

    def test_inspect_unreadable_store_is_2(self, tmp_path, capsys):
        bogus = tmp_path / "corpus-bogus.sqlite"
        bogus.write_bytes(b"garbage")
        assert main(["corpus", "inspect", str(bogus)]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_stat_empty_directory_is_0(self, tmp_path, capsys):
        assert main(["corpus", "stat", str(tmp_path)]) == 0
        assert "no corpus stores" in capsys.readouterr().out

    def test_corpus_requires_subcommand(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["corpus"])
        assert excinfo.value.code == 2


class TestFlagPrecedence:
    """After-subcommand flags win; singly-given flags apply anywhere."""

    def _profile_rows(self, out: str) -> int:
        return out.count("profile=")

    def test_after_subcommand_wins_over_before(self, capsys):
        assert (
            main(
                ["--fault-profile", "flaky"]
                + RUN_AVAIL
                + ["--fault-profile", "none"]
            )
            == 0
        )
        assert self._profile_rows(capsys.readouterr().out) == 0

    def test_after_subcommand_wins_reversed(self, capsys):
        assert (
            main(
                ["--fault-profile", "none"]
                + RUN_AVAIL
                + ["--fault-profile", "flaky"]
            )
            == 0
        )
        assert "profile=flaky" in capsys.readouterr().out

    def test_before_subcommand_applies_when_not_repeated(self, capsys):
        assert main(["--fault-profile", "flaky"] + RUN_AVAIL) == 0
        assert "profile=flaky" in capsys.readouterr().out

    def test_fault_seed_precedence(self, capsys):
        assert (
            main(
                ["--fault-seed", "1"]
                + RUN_AVAIL[:2]
                + ["--scale", "0.0005", "--fault-profile", "chaos", "--fault-seed", "7"]
            )
            == 0
        )
        assert "fault seed 7" in capsys.readouterr().out


class TestReportParity:
    """`repro report` == api.study.render_report == the reportgen module CLI."""

    SCALE = 0.0005

    @pytest.fixture(scope="class")
    def generated(self):
        return api.study.render_report(self.SCALE)

    def test_report_subcommand_matches_facade(self, generated, capsys):
        assert main(["report", "--scale", str(self.SCALE)]) == 0
        assert capsys.readouterr().out == generated

    def test_reportgen_module_cli_matches_facade(self, generated, capsys):
        assert reportgen.main([str(self.SCALE)]) == 0
        assert capsys.readouterr().out == generated

    def test_report_gains_fault_profile_parity_with_run(self, capsys):
        assert (
            main(
                [
                    "report",
                    "--scale",
                    str(self.SCALE),
                    "--fault-profile",
                    "flaky",
                    "--fault-seed",
                    "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "profile=flaky" in out
        assert "fault seed 7" in out
