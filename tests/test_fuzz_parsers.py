"""Fuzz tests: the wire-format parsers must fail closed.

A client parsing attacker-supplied bytes (a certificate chain, a CRL, an
OCSP response) must either produce a structured object or raise
``Asn1Error`` -- never crash with an internal exception.  Hypothesis
feeds each parser random bytes and structured mutations of valid
encodings.
"""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asn1.der import Asn1Error
from repro.pki.certificate import Certificate, CertificateBuilder
from repro.pki.keys import KeyPair
from repro.pki.name import Name
from repro.revocation.crl import CertificateRevocationList, RevokedEntry
from repro.revocation.ocsp import CertStatus, OcspResponse

UTC = datetime.timezone.utc
NB = datetime.datetime(2014, 1, 1, tzinfo=UTC)
NA = datetime.datetime(2016, 1, 1, tzinfo=UTC)


@pytest.fixture(scope="module")
def valid_cert_der() -> bytes:
    keys = KeyPair.generate("fuzz-ca")
    return (
        CertificateBuilder()
        .subject(Name.make("fuzz.example"))
        .issuer(Name.make("Fuzz CA"))
        .serial_number(7)
        .public_key(keys.public_key)
        .validity(NB, NA)
        .crl_urls(["http://crl.fuzz.example/0.crl"])
        .sign(keys)
    ).to_der()


@pytest.fixture(scope="module")
def valid_crl_der() -> bytes:
    keys = KeyPair.generate("fuzz-crl")
    return CertificateRevocationList.build(
        issuer=Name.make("Fuzz CA"),
        issuer_keys=keys,
        entries=[RevokedEntry(5, NB)],
        this_update=NB,
        next_update=NB + datetime.timedelta(days=1),
    ).to_der()


@pytest.fixture(scope="module")
def valid_ocsp_der() -> bytes:
    keys = KeyPair.generate("fuzz-ocsp")
    return OcspResponse.build(
        responder_keys=keys,
        cert_status=CertStatus.GOOD,
        issuer_key_hash=keys.key_id,
        serial_number=5,
        this_update=NB,
        next_update=NB + datetime.timedelta(days=1),
    ).to_der()


class TestRandomBytes:
    @given(st.binary(max_size=200))
    @settings(max_examples=150)
    def test_certificate_parser_fails_closed(self, blob):
        try:
            Certificate.from_der(blob)
        except Asn1Error:
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=150)
    def test_crl_parser_fails_closed(self, blob):
        try:
            CertificateRevocationList.from_der(blob)
        except Asn1Error:
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=150)
    def test_ocsp_parser_fails_closed(self, blob):
        try:
            OcspResponse.from_der(blob)
        except Asn1Error:
            pass


class TestMutatedValidEncodings:
    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_certificate_bitflips(self, valid_cert_der, data):
        blob = bytearray(valid_cert_der)
        position = data.draw(st.integers(0, len(blob) - 1))
        blob[position] ^= data.draw(st.integers(1, 255))
        try:
            parsed = Certificate.from_der(bytes(blob))
        except Asn1Error:
            return
        # If it still parses, it must re-encode without crashing.
        parsed.to_der()

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_crl_truncations(self, valid_crl_der, data):
        cut = data.draw(st.integers(0, len(valid_crl_der) - 1))
        try:
            CertificateRevocationList.from_der(valid_crl_der[:cut])
        except Asn1Error:
            return

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_ocsp_bitflips(self, valid_ocsp_der, data):
        blob = bytearray(valid_ocsp_der)
        position = data.draw(st.integers(0, len(blob) - 1))
        blob[position] ^= data.draw(st.integers(1, 255))
        try:
            OcspResponse.from_der(bytes(blob))
        except Asn1Error:
            return

    def test_tampered_cert_fails_signature(self, valid_cert_der):
        """A parse-surviving mutation must still fail verification."""
        keys = KeyPair.generate("fuzz-ca")
        original = Certificate.from_der(valid_cert_der)
        assert original.verify_signature(keys.public_key)
        blob = bytearray(valid_cert_der)
        # Flip the serial-number content byte (INTEGER 7 in the TBS).
        serial_offset = valid_cert_der.index(b"\x02\x01\x07") + 2
        blob[serial_offset] ^= 0x01
        tampered = Certificate.from_der(bytes(blob))
        assert tampered.serial_number != original.serial_number
        assert not tampered.verify_signature(keys.public_key)
