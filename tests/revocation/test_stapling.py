"""Staple cache behaviour: the mechanism behind Figure 3."""

from __future__ import annotations

import datetime

import pytest

from repro.pki.keys import KeyPair
from repro.revocation.ocsp import CertStatus, OcspResponse
from repro.revocation.stapling import StapleCache, StaplePolicy

UTC = datetime.timezone.utc
T0 = datetime.datetime(2015, 3, 1, 12, 0, tzinfo=UTC)


@pytest.fixture(scope="module")
def keys():
    return KeyPair.generate("staple-test")


def response(keys, status=CertStatus.GOOD, valid_days=3):
    return OcspResponse.build(
        responder_keys=keys,
        cert_status=status,
        issuer_key_hash=keys.key_id,
        serial_number=5,
        this_update=T0 - datetime.timedelta(hours=1),
        next_update=T0 + datetime.timedelta(days=valid_days),
    )


class TestColdCache:
    def test_first_request_gets_no_staple(self, keys):
        cache = StapleCache()
        fresh = response(keys)
        assert cache.get_staple(T0, lambda: fresh) is None

    def test_background_fetch_completes(self, keys):
        cache = StapleCache(fetch_delay=datetime.timedelta(seconds=2))
        fresh = response(keys)
        assert cache.get_staple(T0, lambda: fresh) is None
        later = T0 + datetime.timedelta(seconds=3)
        assert cache.get_staple(later, lambda: fresh) is fresh

    def test_request_before_fetch_completes_still_unstapled(self, keys):
        cache = StapleCache(fetch_delay=datetime.timedelta(seconds=10))
        fresh = response(keys)
        assert cache.get_staple(T0, lambda: fresh) is None
        soon = T0 + datetime.timedelta(seconds=1)
        assert cache.get_staple(soon, lambda: fresh) is None

    def test_responder_down_no_staple_ever(self, keys):
        cache = StapleCache()
        assert cache.get_staple(T0, lambda: None) is None
        later = T0 + datetime.timedelta(seconds=10)
        assert cache.get_staple(later, lambda: None) is None


class TestWarmCache:
    def test_warm_cache_staples_immediately(self, keys):
        cache = StapleCache()
        staple = response(keys)
        cache.warm(staple)
        assert cache.get_staple(T0, lambda: None) is staple

    def test_expired_staple_triggers_refetch(self, keys):
        cache = StapleCache(fetch_delay=datetime.timedelta(seconds=1))
        old = response(keys, valid_days=1)
        cache.warm(old)
        much_later = T0 + datetime.timedelta(days=2)
        fresh = response(keys)
        fresh = OcspResponse.build(
            responder_keys=keys,
            cert_status=CertStatus.GOOD,
            issuer_key_hash=keys.key_id,
            serial_number=5,
            this_update=much_later - datetime.timedelta(hours=1),
            next_update=much_later + datetime.timedelta(days=3),
        )
        assert cache.get_staple(much_later, lambda: fresh) is None  # stale
        after = much_later + datetime.timedelta(seconds=2)
        assert cache.get_staple(after, lambda: fresh) is fresh


class TestPolicy:
    def test_stock_nginx_refuses_revoked_staple(self, keys):
        cache = StapleCache(policy=StaplePolicy.GOOD_ONLY)
        cache.warm(response(keys, status=CertStatus.REVOKED))
        assert cache.get_staple(T0, lambda: None) is None

    def test_modified_nginx_staples_revoked(self, keys):
        # The paper modified nginx to staple any status (footnote 16).
        cache = StapleCache(policy=StaplePolicy.ANY_STATUS)
        revoked = response(keys, status=CertStatus.REVOKED)
        cache.warm(revoked)
        assert cache.get_staple(T0, lambda: None) is revoked

    def test_good_only_admits_good_background_fetch(self, keys):
        cache = StapleCache(
            policy=StaplePolicy.GOOD_ONLY,
            fetch_delay=datetime.timedelta(seconds=1),
        )
        revoked = response(keys, status=CertStatus.REVOKED)
        assert cache.get_staple(T0, lambda: revoked) is None
        later = T0 + datetime.timedelta(seconds=5)
        # The fetched response was revoked -> never cached under GOOD_ONLY.
        assert cache.get_staple(later, lambda: revoked) is None
