"""DER size arithmetic must agree exactly with real encodings."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pki.keys import KeyPair
from repro.pki.name import Name
from repro.revocation.crl import CertificateRevocationList, RevokedEntry
from repro.revocation.sizing import (
    estimated_crl_size,
    length_octets,
    representative_entry_size,
    tlv_size,
)

UTC = datetime.timezone.utc
THIS = datetime.datetime(2014, 6, 15, 12, 0, tzinfo=UTC)
NEXT = THIS + datetime.timedelta(days=1)


class TestPrimitives:
    def test_length_octets(self):
        assert length_octets(0) == 1
        assert length_octets(127) == 1
        assert length_octets(128) == 2
        assert length_octets(255) == 2
        assert length_octets(256) == 3
        assert length_octets(65536) == 4

    def test_tlv_size(self):
        assert tlv_size(0) == 2
        assert tlv_size(127) == 129
        assert tlv_size(128) == 131

    def test_representative_entry_size_positive_widths(self):
        sizes = [representative_entry_size(w) for w in (1, 4, 8, 21)]
        assert sizes == sorted(sizes)
        with pytest.raises(ValueError):
            representative_entry_size(0)

    def test_reason_adds_bytes(self):
        assert representative_entry_size(4, True) > representative_entry_size(4)


class TestEstimateMatchesEncoding:
    def _build(self, n_entries: int, serial_base: int):
        keys = KeyPair.generate("sizing")
        name = Name.make("Sizing CA", organization="Sizing CA")
        entries = [
            RevokedEntry(serial_base + i, THIS - datetime.timedelta(days=2))
            for i in range(n_entries)
        ]
        crl = CertificateRevocationList.build(
            issuer=name,
            issuer_keys=keys,
            entries=entries,
            this_update=THIS,
            next_update=NEXT,
            crl_number=1,
        )
        return crl, name, keys

    @pytest.mark.parametrize("n_entries", [0, 1, 5, 100, 1000])
    def test_exact_for_materialized(self, n_entries):
        crl, name, keys = self._build(n_entries, serial_base=1000)
        materialized = sum(len(e.to_der()) for e in crl.entries)
        estimate = estimated_crl_size(
            issuer=name,
            signature_size=keys.backend.signature_size,
            signature_algorithm_oid=keys.backend.algorithm_oid,
            materialized_entry_bytes=materialized,
            hidden_entry_count=0,
            hidden_entry_size=0,
            crl_number=1,
        )
        assert estimate == len(crl.to_der())

    def test_hidden_entries_equivalent_to_real_ones(self):
        """hidden_count x hidden_size must equal actually encoding that
        many fixed-width entries."""
        serial_width = 4
        hidden_size = representative_entry_size(serial_width)
        # Serial chosen to occupy exactly `serial_width` content bytes.
        serial = (1 << (serial_width * 8 - 2)) | 1
        crl, name, keys = self._build(0, serial_base=0)
        real_entries = [
            RevokedEntry(serial + 2 * i, THIS - datetime.timedelta(days=2))
            for i in range(500)
        ]
        real = CertificateRevocationList.build(
            issuer=name,
            issuer_keys=keys,
            entries=real_entries,
            this_update=THIS,
            next_update=NEXT,
            crl_number=1,
        )
        estimate = estimated_crl_size(
            issuer=name,
            signature_size=keys.backend.signature_size,
            signature_algorithm_oid=keys.backend.algorithm_oid,
            materialized_entry_bytes=0,
            hidden_entry_count=500,
            hidden_entry_size=hidden_size,
            crl_number=1,
        )
        assert estimate == len(real.to_der())

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_hidden_count(self, hidden):
        name = Name.make("Sizing CA")
        base = estimated_crl_size(
            issuer=name, signature_size=256,
            signature_algorithm_oid="1.2.840.113549.1.1.11",
            materialized_entry_bytes=0, hidden_entry_count=hidden,
            hidden_entry_size=25,
        )
        bigger = estimated_crl_size(
            issuer=name, signature_size=256,
            signature_algorithm_oid="1.2.840.113549.1.1.11",
            materialized_entry_bytes=0, hidden_entry_count=hidden + 1,
            hidden_entry_size=25,
        )
        assert bigger > base

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            estimated_crl_size(
                issuer=Name.make("x"), signature_size=256,
                signature_algorithm_oid="1.2.840.113549.1.1.11",
                materialized_entry_bytes=-1, hidden_entry_count=0,
                hidden_entry_size=0,
            )
