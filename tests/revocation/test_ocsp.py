"""OCSP request/response tests."""

from __future__ import annotations

import datetime

import pytest

from repro.pki.keys import KeyPair
from repro.revocation.ocsp import (
    CertStatus,
    OcspRequest,
    OcspResponse,
    OcspResponseStatus,
)
from repro.revocation.reason import ReasonCode

UTC = datetime.timezone.utc
THIS = datetime.datetime(2015, 3, 1, tzinfo=UTC)
NEXT = THIS + datetime.timedelta(days=4)


@pytest.fixture(scope="module")
def keys():
    return KeyPair.generate("ocsp-test")


def make_response(keys, status=CertStatus.GOOD, **kwargs) -> OcspResponse:
    return OcspResponse.build(
        responder_keys=keys,
        cert_status=status,
        issuer_key_hash=keys.key_id,
        serial_number=kwargs.pop("serial", 77),
        this_update=THIS,
        next_update=NEXT,
        **kwargs,
    )


class TestRequest:
    def test_roundtrip(self, keys):
        request = OcspRequest(issuer_key_hash=keys.key_id, serial_number=123)
        parsed = OcspRequest.from_der(request.to_der())
        assert parsed.issuer_key_hash == keys.key_id
        assert parsed.serial_number == 123

    def test_get_flag_preserved(self, keys):
        request = OcspRequest(keys.key_id, 1, use_get=False)
        parsed = OcspRequest.from_der(request.to_der(), use_get=False)
        assert not parsed.use_get


class TestResponse:
    def test_good_roundtrip(self, keys):
        response = make_response(keys)
        parsed = OcspResponse.from_der(response.to_der())
        assert parsed.cert_status is CertStatus.GOOD
        assert parsed.serial_number == 77
        assert parsed.is_successful
        assert parsed.this_update == THIS and parsed.next_update == NEXT

    def test_revoked_roundtrip_with_reason(self, keys):
        revoked_at = THIS - datetime.timedelta(days=2)
        response = make_response(
            keys,
            status=CertStatus.REVOKED,
            revocation_time=revoked_at,
            revocation_reason=ReasonCode.KEY_COMPROMISE,
        )
        parsed = OcspResponse.from_der(response.to_der())
        assert parsed.cert_status is CertStatus.REVOKED
        assert parsed.revocation_time == revoked_at
        assert parsed.revocation_reason is ReasonCode.KEY_COMPROMISE

    def test_unknown_roundtrip(self, keys):
        parsed = OcspResponse.from_der(
            make_response(keys, status=CertStatus.UNKNOWN).to_der()
        )
        assert parsed.cert_status is CertStatus.UNKNOWN

    def test_signature_verifies(self, keys):
        response = make_response(keys)
        assert response.verify_signature(keys.public_key)
        assert not response.verify_signature(KeyPair.generate("x").public_key)

    def test_expiry(self, keys):
        response = make_response(keys)
        assert not response.is_expired(THIS + datetime.timedelta(days=1))
        assert response.is_expired(NEXT + datetime.timedelta(seconds=1))

    def test_error_response(self):
        error = OcspResponse.error(OcspResponseStatus.TRY_LATER)
        assert not error.is_successful
        assert error.response_status is OcspResponseStatus.TRY_LATER

    def test_error_response_roundtrip(self):
        error = OcspResponse.error(OcspResponseStatus.INTERNAL_ERROR)
        parsed = OcspResponse.from_der(error.to_der())
        assert parsed.response_status is OcspResponseStatus.INTERNAL_ERROR

    def test_bad_window_rejected(self, keys):
        with pytest.raises(ValueError):
            OcspResponse.build(
                responder_keys=keys,
                cert_status=CertStatus.GOOD,
                issuer_key_hash=keys.key_id,
                serial_number=1,
                this_update=NEXT,
                next_update=THIS,
            )

    def test_response_is_small(self, keys):
        """Paper §5.2: OCSP responses are typically under 1 KB."""
        assert make_response(keys).encoded_size < 1024
