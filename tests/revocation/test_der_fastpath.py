"""The bulk DER fast path must be byte-identical to the slow path.

Three layers are covered: the sequence assembler primitives in
``repro.asn1.der``, per-entry size arithmetic in ``repro.revocation.sizing``,
and the incremental ``CertificateRevocationList.encoded_size`` property --
each compared against a full re-encode on randomized inputs.
"""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asn1 import der
from repro.pki.keys import KeyPair
from repro.pki.name import Name
from repro.revocation.crl import CertificateRevocationList, RevokedEntry
from repro.revocation.reason import ReasonCode
from repro.revocation.sizing import revoked_entry_size

UTC = datetime.timezone.utc
THIS = datetime.datetime(2014, 11, 3, 12, 0, tzinfo=UTC)
NEXT = THIS + datetime.timedelta(days=1)

serials = st.integers(min_value=0, max_value=1 << 168)
reasons = st.one_of(st.none(), st.sampled_from(list(ReasonCode)))
revocation_times = st.datetimes(
    min_value=datetime.datetime(1990, 1, 1),
    max_value=datetime.datetime(2120, 12, 31),
).map(lambda dt: dt.replace(tzinfo=UTC, microsecond=0))


@pytest.fixture(scope="module")
def issuer_keys():
    return KeyPair.generate("fastpath-test-ca")


@pytest.fixture(scope="module")
def issuer_name():
    return Name.make("Fastpath Test CA", organization="Fastpath Test CA")


class TestSequenceAssembler:
    @given(st.lists(st.binary(min_size=0, max_size=64), max_size=20))
    def test_encode_sequence_many_matches_varargs(self, chunks):
        assert der.encode_sequence_many(chunks) == der.encode_sequence(*chunks)

    @given(st.lists(st.binary(min_size=0, max_size=64), max_size=20))
    def test_assembler_matches_varargs(self, chunks):
        assembler = der.SequenceAssembler()
        for chunk in chunks:
            assembler.append(chunk)
        assert assembler.content_length == sum(len(c) for c in chunks)
        assert assembler.finish() == der.encode_sequence(*chunks)

    def test_accepts_generators(self):
        parts = [der.encode_integer(i) for i in range(5)]
        assert der.encode_sequence_many(iter(parts)) == der.encode_sequence(*parts)

    @given(st.integers(min_value=0, max_value=0x7F))
    def test_small_integer_fast_path_identical(self, value):
        # The precomputed table must match the generic TLV encoder.
        assert der.encode_integer(value) == der.encode_tlv(
            der.Tag.INTEGER, bytes([value])
        )


class TestRevokedEntrySize:
    @given(serial=serials, reason=reasons, when=revocation_times)
    @settings(max_examples=200, deadline=None)
    def test_matches_real_encoding(self, serial, reason, when):
        entry = RevokedEntry(serial, when, reason)
        predicted = revoked_entry_size(
            serial,
            with_reason=reason is not None,
            generalized_time=when.year > 2049,
        )
        assert predicted == len(entry.to_der())

    @given(serial=st.integers(min_value=-(1 << 96), max_value=-1))
    @settings(max_examples=50, deadline=None)
    def test_negative_serial_fallback(self, serial):
        entry = RevokedEntry(serial, THIS, None)
        assert revoked_entry_size(serial) == len(entry.to_der())


class TestIncrementalEncodedSize:
    @given(
        entries=st.lists(
            st.tuples(serials, reasons, revocation_times),
            min_size=0,
            max_size=30,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_encoded_size_matches_to_der(
        self, issuer_name, issuer_keys, entries
    ):
        crl = CertificateRevocationList.build(
            issuer=issuer_name,
            issuer_keys=issuer_keys,
            entries=[
                RevokedEntry(serial, when, reason)
                for serial, reason, when in entries
            ],
            this_update=THIS,
            next_update=NEXT,
            crl_number=42,
            url="http://crl.example/fastpath.crl",
        )
        assert crl.encoded_size == len(crl.to_der())

    def test_debug_flag_checks_against_real_encoding(
        self, issuer_name, issuer_keys, monkeypatch
    ):
        from repro.revocation import crl as crl_module

        monkeypatch.setattr(crl_module, "_DER_CHECK", True)
        crl = CertificateRevocationList.build(
            issuer=issuer_name,
            issuer_keys=issuer_keys,
            entries=[RevokedEntry(1234, THIS, ReasonCode.KEY_COMPROMISE)],
            this_update=THIS,
            next_update=NEXT,
            url="http://crl.example/checked.crl",
        )
        # With the flag on, the arithmetic path is asserted against a
        # full re-encode on every query; it must agree.
        assert crl.encoded_size == len(crl.to_der())
