"""Reason code tests."""

from __future__ import annotations

from repro.revocation.reason import (
    CRLSET_REASON_CODES,
    ReasonCode,
    is_crlset_eligible,
)


class TestReasonCodes:
    def test_rfc_values(self):
        assert ReasonCode.UNSPECIFIED == 0
        assert ReasonCode.KEY_COMPROMISE == 1
        assert ReasonCode.CA_COMPROMISE == 2
        assert ReasonCode.REMOVE_FROM_CRL == 8
        assert ReasonCode.AA_COMPROMISE == 10

    def test_value_7_not_defined(self):
        assert 7 not in {int(code) for code in ReasonCode}

    def test_labels(self):
        assert ReasonCode.KEY_COMPROMISE.label == "KeyCompromise"
        assert ReasonCode.UNSPECIFIED.label == "Unspecified"


class TestCrlsetEligibility:
    def test_no_reason_is_eligible(self):
        # The vast majority of revocations carry no reason code (§4.2),
        # and those are admitted to CRLSets.
        assert is_crlset_eligible(None)

    def test_eligible_codes(self):
        for code in CRLSET_REASON_CODES:
            assert is_crlset_eligible(code)

    def test_ineligible_codes(self):
        for code in (
            ReasonCode.SUPERSEDED,
            ReasonCode.CESSATION_OF_OPERATION,
            ReasonCode.AFFILIATION_CHANGED,
            ReasonCode.PRIVILEGE_WITHDRAWN,
            ReasonCode.CERTIFICATE_HOLD,
        ):
            assert not is_crlset_eligible(code)
