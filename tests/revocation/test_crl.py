"""CRL build/encode/decode/verify tests."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pki.keys import KeyPair
from repro.pki.name import Name
from repro.revocation.crl import CertificateRevocationList, RevokedEntry
from repro.revocation.reason import ReasonCode

UTC = datetime.timezone.utc
THIS = datetime.datetime(2015, 3, 1, tzinfo=UTC)
NEXT = datetime.datetime(2015, 3, 2, tzinfo=UTC)


@pytest.fixture(scope="module")
def issuer_keys():
    return KeyPair.generate("crl-test-ca")


@pytest.fixture(scope="module")
def issuer_name():
    return Name.make("CRL Test CA", organization="CRL Test CA")


def make_crl(issuer_name, issuer_keys, serials=(5, 10), reason=None):
    entries = [
        RevokedEntry(serial, THIS - datetime.timedelta(days=3), reason)
        for serial in serials
    ]
    return CertificateRevocationList.build(
        issuer=issuer_name,
        issuer_keys=issuer_keys,
        entries=entries,
        this_update=THIS,
        next_update=NEXT,
        crl_number=7,
        url="http://crl.example/test.crl",
    )


class TestBuild:
    def test_lookup(self, issuer_name, issuer_keys):
        crl = make_crl(issuer_name, issuer_keys)
        assert crl.is_revoked(5)
        assert crl.is_revoked(10)
        assert not crl.is_revoked(6)
        assert len(crl) == 2
        assert crl.serial_numbers() == {5, 10}

    def test_entries_sorted_by_serial(self, issuer_name, issuer_keys):
        crl = make_crl(issuer_name, issuer_keys, serials=(9, 1, 5))
        assert [e.serial_number for e in crl.entries] == [1, 5, 9]

    def test_entry_for(self, issuer_name, issuer_keys):
        crl = make_crl(issuer_name, issuer_keys, reason=ReasonCode.KEY_COMPROMISE)
        entry = crl.entry_for(5)
        assert entry is not None
        assert entry.reason is ReasonCode.KEY_COMPROMISE
        assert crl.entry_for(999) is None

    def test_expiry_window(self, issuer_name, issuer_keys):
        crl = make_crl(issuer_name, issuer_keys)
        assert not crl.is_expired(THIS + datetime.timedelta(hours=12))
        assert crl.is_expired(NEXT + datetime.timedelta(seconds=1))

    def test_bad_window_rejected(self, issuer_name, issuer_keys):
        with pytest.raises(ValueError):
            CertificateRevocationList.build(
                issuer=issuer_name,
                issuer_keys=issuer_keys,
                entries=[],
                this_update=NEXT,
                next_update=THIS,
            )


class TestWireFormat:
    def test_roundtrip(self, issuer_name, issuer_keys):
        crl = make_crl(issuer_name, issuer_keys, reason=ReasonCode.SUPERSEDED)
        parsed = CertificateRevocationList.from_der(crl.to_der(), url=crl.url)
        assert parsed.issuer == crl.issuer
        assert parsed.this_update == crl.this_update
        assert parsed.next_update == crl.next_update
        assert parsed.crl_number == crl.crl_number
        assert parsed.serial_numbers() == crl.serial_numbers()
        assert parsed.entry_for(5).reason is ReasonCode.SUPERSEDED
        assert parsed.signature == crl.signature

    def test_empty_crl_roundtrip(self, issuer_name, issuer_keys):
        crl = make_crl(issuer_name, issuer_keys, serials=())
        parsed = CertificateRevocationList.from_der(crl.to_der())
        assert len(parsed) == 0

    def test_signature_verifies(self, issuer_name, issuer_keys):
        crl = make_crl(issuer_name, issuer_keys)
        assert crl.verify_signature(issuer_keys.public_key)
        assert not crl.verify_signature(KeyPair.generate("other").public_key)

    def test_reencoded_matches(self, issuer_name, issuer_keys):
        crl = make_crl(issuer_name, issuer_keys)
        parsed = CertificateRevocationList.from_der(crl.to_der())
        assert parsed.to_der() == crl.to_der()

    def test_entry_size_near_paper_value(self, issuer_name, issuer_keys):
        """The paper measured ~38 bytes per CRL entry on average."""
        small = make_crl(issuer_name, issuer_keys, serials=())
        big = make_crl(issuer_name, issuer_keys, serials=tuple(range(1000, 2000)))
        per_entry = (big.encoded_size - small.encoded_size) / 1000
        assert 20 <= per_entry <= 50

    @given(
        st.sets(st.integers(min_value=0, max_value=2**64), min_size=0, max_size=30)
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, serials):
        keys = KeyPair.generate("crl-prop")
        name = Name.make("Prop CA")
        crl = CertificateRevocationList.build(
            issuer=name,
            issuer_keys=keys,
            entries=[
                RevokedEntry(s, THIS - datetime.timedelta(days=1)) for s in serials
            ],
            this_update=THIS,
            next_update=NEXT,
        )
        parsed = CertificateRevocationList.from_der(crl.to_der())
        assert parsed.serial_numbers() == serials
