"""RevocationChecker failure classification over a live network.

Drives every static FailureMode and the new fault kinds through
``check_crl``/``check_ocsp`` and asserts the explicit soft/hard-fail
classification (FailureClass), retry counts, and cost accounting that
replaced the old collapse-to-None behaviour.
"""

from __future__ import annotations

import datetime

import pytest

from repro.ca.authority import CertificateAuthority
from repro.net.cache import ClientCache
from repro.net.endpoints import CrlEndpoint, OcspEndpoint
from repro.net.faults import FaultKind, FaultPlan, FaultSpec
from repro.net.fetcher import NetworkFetcher, RetryPolicy
from repro.net.transport import FailureMode, Network
from repro.pki.keys import KeyPair
from repro.revocation.checker import (
    CheckOutcome,
    FailureClass,
    RevocationChecker,
)

UTC = datetime.timezone.utc
NB = datetime.datetime(2014, 1, 1, tzinfo=UTC)
NA = datetime.datetime(2016, 1, 1, tzinfo=UTC)
NOW = datetime.datetime(2015, 3, 1, 12, 0, tzinfo=UTC)

CRL_HOST_URL = "http://crl.cls.example"
OCSP_URL = "http://ocsp.cls.example/q"


@pytest.fixture()
def ca():
    return CertificateAuthority.create_root(
        "Classify CA",
        "classify-ca",
        NB,
        NA,
        crl_base_url=CRL_HOST_URL,
        ocsp_url=OCSP_URL,
    )


@pytest.fixture()
def leaf(ca):
    return ca.issue_leaf(
        "c.cls.example", KeyPair.generate("cls-leaf").public_key, NB, NA
    )


def build(ca, plan=None, policy=None):
    network = Network(faults=plan)
    url = ca.crl_publisher.urls[0]
    network.register(
        url, CrlEndpoint(lambda at: ca.crl_publisher.encode(url, at).to_der())
    )
    network.register(OCSP_URL, OcspEndpoint(ca.ocsp_responder.respond))
    fetcher = NetworkFetcher(
        network,
        clock_now=lambda: NOW,
        cache=ClientCache(),
        retry_policy=policy or RetryPolicy.no_retry(),
    )
    return network, RevocationChecker(fetcher), fetcher


STATIC_CLASSES = [
    (FailureMode.NXDOMAIN, FailureClass.DNS),
    (FailureMode.HTTP_404, FailureClass.HTTP),
    (FailureMode.NO_RESPONSE, FailureClass.TIMEOUT),
]


class TestStaticModeClassification:
    @pytest.mark.parametrize("mode,expected", STATIC_CLASSES)
    def test_crl(self, ca, leaf, mode, expected):
        network, checker, fetcher = build(ca)
        network.set_failure(leaf.crl_urls[0], mode)
        result = checker.check_crl(leaf, NOW)
        assert result.outcome is CheckOutcome.UNAVAILABLE
        assert result.failure is expected
        assert result.is_soft_failure and result.is_hard_failure
        assert result.attempts == 1
        assert result.latency > datetime.timedelta(0)

    @pytest.mark.parametrize("mode,expected", STATIC_CLASSES)
    def test_ocsp(self, ca, leaf, mode, expected):
        network, checker, fetcher = build(ca)
        network.set_failure(OCSP_URL, mode)
        result = checker.check_ocsp(leaf, ca.issuer_key_hash, NOW)
        assert result.outcome is CheckOutcome.UNAVAILABLE
        assert result.failure is expected
        assert result.attempts == 1

    def test_no_pointer(self, ca):
        bare = ca.issue_leaf(
            "bare.cls.example",
            KeyPair.generate("bare").public_key,
            NB,
            NA,
            include_crl=False,
            include_ocsp=False,
        )
        _, checker, _ = build(ca)
        result = checker.check_crl(bare, NOW)
        assert result.outcome is CheckOutcome.NO_INFO
        assert result.failure is FailureClass.NO_POINTER


class TestFaultKindClassification:
    def _always(self, kind, **kwargs):
        return FaultPlan(seed=1).add("*", FaultSpec(kind, **kwargs))

    def test_truncated_crl_is_malformed(self, ca, leaf):
        plan = self._always(FaultKind.TRUNCATE, truncate_fraction=0.3)
        _, checker, fetcher = build(ca, plan=plan)
        result = checker.check_crl(leaf, NOW)
        assert result.outcome is CheckOutcome.UNAVAILABLE
        assert result.failure is FailureClass.MALFORMED
        assert fetcher.stats.parse_errors >= 1
        # The broken bytes were still paid for.
        assert result.bytes_downloaded > 0

    def test_corrupt_ocsp_is_malformed_or_unavailable(self, ca, leaf):
        plan = self._always(FaultKind.CORRUPT)
        _, checker, _ = build(ca, plan=plan)
        result = checker.check_ocsp(leaf, ca.issuer_key_hash, NOW)
        # A flipped bit usually breaks DER parsing; wherever it lands the
        # check must not report a definitive answer from corrupt bytes.
        assert result.outcome in (
            CheckOutcome.UNAVAILABLE,
            CheckOutcome.GOOD,  # bit landed somewhere harmless
        )

    def test_stale_crl_is_stale(self, ca, leaf):
        plan = self._always(FaultKind.STALE, stale_by=datetime.timedelta(days=60))
        _, checker, _ = build(ca, plan=plan)
        result = checker.check_crl(leaf, NOW)
        assert result.outcome is CheckOutcome.UNAVAILABLE
        assert result.failure is FailureClass.STALE

    def test_stale_ocsp_is_stale(self, ca, leaf):
        plan = self._always(FaultKind.STALE, stale_by=datetime.timedelta(days=60))
        _, checker, _ = build(ca, plan=plan)
        result = checker.check_ocsp(leaf, ca.issuer_key_hash, NOW)
        assert result.outcome is CheckOutcome.UNAVAILABLE
        assert result.failure is FailureClass.STALE

    def test_retry_count_surfaces_in_result(self, ca, leaf):
        network, checker, fetcher = build(
            ca, policy=RetryPolicy(max_attempts=3)
        )
        network.set_failure(leaf.crl_urls[0], FailureMode.NO_RESPONSE)
        result = checker.check_crl(leaf, NOW)
        assert result.attempts == 3
        assert result.latency >= 3 * network.timeout

    def test_healthy_path_still_definitive(self, ca, leaf):
        _, checker, _ = build(ca)
        assert checker.check_crl(leaf, NOW).outcome is CheckOutcome.GOOD
        assert (
            checker.check_ocsp(leaf, ca.issuer_key_hash, NOW).outcome
            is CheckOutcome.GOOD
        )


class TestLegacyFetcherCompatibility:
    def test_plain_protocol_fetcher_still_works(self, ca, leaf):
        class NoneFetcher:
            def fetch_crl(self, url):
                return None

            def fetch_ocsp(self, url, issuer_key_hash, serial, use_get=True):
                return None

        checker = RevocationChecker(NoneFetcher())
        result = checker.check_crl(leaf, NOW)
        assert result.outcome is CheckOutcome.UNAVAILABLE
        assert result.failure is FailureClass.UNCLASSIFIED
