"""Client-side RevocationChecker tests with a stub fetcher."""

from __future__ import annotations

import datetime

import pytest

from repro.pki.certificate import CertificateBuilder
from repro.pki.keys import KeyPair
from repro.pki.name import Name
from repro.revocation.checker import CheckOutcome, RevocationChecker
from repro.revocation.crl import CertificateRevocationList, RevokedEntry
from repro.revocation.ocsp import CertStatus, OcspResponse

UTC = datetime.timezone.utc
NOW = datetime.datetime(2015, 3, 1, 12, 0, tzinfo=UTC)


class StubFetcher:
    """RevocationFetcher backed by dictionaries."""

    def __init__(self):
        self.crls = {}
        self.ocsp = {}

    def fetch_crl(self, url):
        return self.crls.get(url)

    def fetch_ocsp(self, url, issuer_key_hash, serial_number, use_get=True):
        return self.ocsp.get((url, serial_number))


@pytest.fixture(scope="module")
def ca_keys():
    return KeyPair.generate("checker-ca")


def make_cert(ca_keys, crl_url=None, ocsp_url=None, serial=9):
    builder = (
        CertificateBuilder()
        .subject(Name.make("c.example"))
        .issuer(Name.make("Checker CA"))
        .serial_number(serial)
        .public_key(KeyPair.generate("leaf").public_key)
        .validity(NOW - datetime.timedelta(days=30), NOW + datetime.timedelta(days=300))
    )
    if crl_url:
        builder.crl_urls([crl_url])
    if ocsp_url:
        builder.ocsp_urls([ocsp_url])
    return builder.sign(ca_keys)


def make_crl(ca_keys, serials):
    return CertificateRevocationList.build(
        issuer=Name.make("Checker CA"),
        issuer_keys=ca_keys,
        entries=[RevokedEntry(s, NOW - datetime.timedelta(days=1)) for s in serials],
        this_update=NOW - datetime.timedelta(hours=1),
        next_update=NOW + datetime.timedelta(hours=23),
    )


def make_ocsp(ca_keys, serial, status):
    return OcspResponse.build(
        responder_keys=ca_keys,
        cert_status=status,
        issuer_key_hash=ca_keys.key_id,
        serial_number=serial,
        this_update=NOW - datetime.timedelta(hours=1),
        next_update=NOW + datetime.timedelta(days=3),
    )


class TestCrlChecks:
    def test_good(self, ca_keys):
        fetcher = StubFetcher()
        fetcher.crls["http://c/x.crl"] = make_crl(ca_keys, [1, 2])
        cert = make_cert(ca_keys, crl_url="http://c/x.crl", serial=9)
        result = RevocationChecker(fetcher).check_crl(cert, NOW)
        assert result.outcome is CheckOutcome.GOOD
        assert result.protocol == "crl"
        assert result.bytes_downloaded > 0

    def test_revoked(self, ca_keys):
        fetcher = StubFetcher()
        fetcher.crls["http://c/x.crl"] = make_crl(ca_keys, [9])
        cert = make_cert(ca_keys, crl_url="http://c/x.crl", serial=9)
        assert (
            RevocationChecker(fetcher).check_crl(cert, NOW).outcome
            is CheckOutcome.REVOKED
        )

    def test_unavailable(self, ca_keys):
        cert = make_cert(ca_keys, crl_url="http://c/x.crl")
        result = RevocationChecker(StubFetcher()).check_crl(cert, NOW)
        assert result.outcome is CheckOutcome.UNAVAILABLE

    def test_expired_crl_is_unavailable(self, ca_keys):
        fetcher = StubFetcher()
        fetcher.crls["http://c/x.crl"] = make_crl(ca_keys, [])
        cert = make_cert(ca_keys, crl_url="http://c/x.crl")
        late = NOW + datetime.timedelta(days=2)
        assert (
            RevocationChecker(fetcher).check_crl(cert, late).outcome
            is CheckOutcome.UNAVAILABLE
        )

    def test_no_info(self, ca_keys):
        cert = make_cert(ca_keys)
        result = RevocationChecker(StubFetcher()).check_crl(cert, NOW)
        assert result.outcome is CheckOutcome.NO_INFO


class TestOcspChecks:
    def test_good(self, ca_keys):
        fetcher = StubFetcher()
        fetcher.ocsp[("http://o/q", 9)] = make_ocsp(ca_keys, 9, CertStatus.GOOD)
        cert = make_cert(ca_keys, ocsp_url="http://o/q", serial=9)
        result = RevocationChecker(fetcher).check_ocsp(cert, ca_keys.key_id, NOW)
        assert result.outcome is CheckOutcome.GOOD

    def test_revoked(self, ca_keys):
        fetcher = StubFetcher()
        fetcher.ocsp[("http://o/q", 9)] = make_ocsp(ca_keys, 9, CertStatus.REVOKED)
        cert = make_cert(ca_keys, ocsp_url="http://o/q", serial=9)
        result = RevocationChecker(fetcher).check_ocsp(cert, ca_keys.key_id, NOW)
        assert result.outcome is CheckOutcome.REVOKED

    def test_unknown(self, ca_keys):
        fetcher = StubFetcher()
        fetcher.ocsp[("http://o/q", 9)] = make_ocsp(ca_keys, 9, CertStatus.UNKNOWN)
        cert = make_cert(ca_keys, ocsp_url="http://o/q", serial=9)
        result = RevocationChecker(fetcher).check_ocsp(cert, ca_keys.key_id, NOW)
        assert result.outcome is CheckOutcome.UNKNOWN
        assert not result.is_definitive

    def test_unavailable(self, ca_keys):
        cert = make_cert(ca_keys, ocsp_url="http://o/q")
        result = RevocationChecker(StubFetcher()).check_ocsp(
            cert, ca_keys.key_id, NOW
        )
        assert result.outcome is CheckOutcome.UNAVAILABLE


class TestStapleChecks:
    def test_missing_staple(self, ca_keys):
        result = RevocationChecker(StubFetcher()).check_staple(None, NOW)
        assert result.outcome is CheckOutcome.UNAVAILABLE

    def test_revoked_staple(self, ca_keys):
        staple = make_ocsp(ca_keys, 9, CertStatus.REVOKED)
        result = RevocationChecker(StubFetcher()).check_staple(staple, NOW)
        assert result.outcome is CheckOutcome.REVOKED
        assert result.protocol == "staple"

    def test_expired_staple_unavailable(self, ca_keys):
        staple = make_ocsp(ca_keys, 9, CertStatus.GOOD)
        late = NOW + datetime.timedelta(days=30)
        result = RevocationChecker(StubFetcher()).check_staple(staple, late)
        assert result.outcome is CheckOutcome.UNAVAILABLE
