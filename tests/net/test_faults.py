"""Fault-injection layer: spec validation, plan matching, determinism,
and every fault kind observed through a live Network."""

from __future__ import annotations

import datetime

import pytest

from repro.asn1 import der
from repro.net.dns import DnsError
from repro.net.endpoints import StaticEndpoint
from repro.net.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    PROFILES,
    plan_from_profile,
)
from repro.net.http import HttpStatus
from repro.net.transport import FailureMode, Network, TimeoutError_

UTC = datetime.timezone.utc
NOW = datetime.datetime(2015, 4, 15, 12, 0, tzinfo=UTC)
URL = "http://crl.faulty.example/a.crl"
BODY = der.encode_tlv(der.Tag.SEQUENCE, b"x" * 996)


def make_network(plan: FaultPlan | None) -> Network:
    network = Network(faults=plan)
    network.register(URL, StaticEndpoint(BODY))
    return network


class TestFaultSpec:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.FLAKY, probability=1.5)

    def test_outage_requires_window(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.OUTAGE)

    def test_window_ordering(self):
        with pytest.raises(ValueError):
            FaultSpec(
                FaultKind.OUTAGE,
                window=(NOW, NOW - datetime.timedelta(hours=1)),
            )

    def test_truncate_fraction_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.TRUNCATE, truncate_fraction=1.0)


class TestPatternMatching:
    def test_star_matches_all(self):
        plan = FaultPlan(seed=1).add("*", FaultSpec(FaultKind.FLAKY))
        assert plan.decide(URL, NOW).mode is FailureMode.NO_RESPONSE

    def test_host_wildcard(self):
        plan = FaultPlan(seed=1).add(
            "crl.faulty.example/*", FaultSpec(FaultKind.FLAKY)
        )
        assert not plan.decide(URL, NOW).is_noop
        assert plan.decide("http://other.example/a.crl", NOW).is_noop

    def test_exact_url(self):
        plan = FaultPlan(seed=1).add(URL, FaultSpec(FaultKind.FLAKY))
        assert not plan.decide(URL, NOW).is_noop
        assert plan.decide("http://crl.faulty.example/b.crl", NOW).is_noop


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        def decisions(seed):
            plan = FaultPlan(seed=seed).add(
                "*", FaultSpec(FaultKind.FLAKY, probability=0.5)
            )
            return [plan.decide(URL, NOW).mode for _ in range(50)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)  # astronomically unlikely to tie

    def test_streams_independent_per_url(self):
        # Interleaving requests to another URL must not shift this URL's
        # fault sequence (parallel workers see per-URL order only).
        plan_a = FaultPlan(seed=3).add("*", FaultSpec(FaultKind.FLAKY, probability=0.5))
        plan_b = FaultPlan(seed=3).add("*", FaultSpec(FaultKind.FLAKY, probability=0.5))
        seq_a = [plan_a.decide(URL, NOW).mode for _ in range(20)]
        seq_b = []
        for _ in range(20):
            plan_b.decide("http://other.example/x", NOW)
            seq_b.append(plan_b.decide(URL, NOW).mode)
        assert seq_a == seq_b

    def test_reset_replays_from_scratch(self):
        plan = FaultPlan(seed=9).add("*", FaultSpec(FaultKind.FLAKY, probability=0.5))
        first = [plan.decide(URL, NOW).mode for _ in range(20)]
        plan.reset()
        assert [plan.decide(URL, NOW).mode for _ in range(20)] == first


class TestFaultKindsThroughNetwork:
    def test_flaky_timeout(self):
        plan = FaultPlan(seed=1).add("*", FaultSpec(FaultKind.FLAKY))
        network = make_network(plan)
        with pytest.raises(TimeoutError_) as excinfo:
            network.get(URL, NOW)
        # Failed requests carry their cost.
        assert excinfo.value.stats.latency == network.timeout

    def test_flaky_nxdomain(self):
        plan = FaultPlan(seed=1).add(
            "*", FaultSpec(FaultKind.FLAKY, mode=FailureMode.NXDOMAIN)
        )
        network = make_network(plan)
        with pytest.raises(DnsError) as excinfo:
            network.get(URL, NOW)
        assert excinfo.value.stats.latency == network.profile.rtt

    def test_flaky_404(self):
        plan = FaultPlan(seed=1).add(
            "*", FaultSpec(FaultKind.FLAKY, mode=FailureMode.HTTP_404)
        )
        network = make_network(plan)
        response, _ = network.get(URL, NOW)
        assert response.status == HttpStatus.NOT_FOUND

    def test_outage_window(self):
        window = (NOW, NOW + datetime.timedelta(hours=1))
        plan = FaultPlan(seed=1).add(
            "*", FaultSpec(FaultKind.OUTAGE, window=window)
        )
        network = make_network(plan)
        with pytest.raises(TimeoutError_):
            network.get(URL, NOW)
        # Outside the window the endpoint is healthy again.
        response, _ = network.get(URL, NOW + datetime.timedelta(hours=2))
        assert response.ok

    def test_slow_adds_latency(self):
        extra = datetime.timedelta(seconds=2)
        plan = FaultPlan(seed=1).add(
            "*", FaultSpec(FaultKind.SLOW, extra_latency=extra)
        )
        network = make_network(plan)
        _, slow_stats = network.get(URL, NOW)
        baseline = make_network(None)
        _, fast_stats = baseline.get(URL, NOW)
        assert slow_stats.latency == fast_stats.latency + extra

    def test_truncate_shortens_body(self):
        plan = FaultPlan(seed=1).add(
            "*", FaultSpec(FaultKind.TRUNCATE, truncate_fraction=0.25)
        )
        network = make_network(plan)
        response, stats = network.get(URL, NOW)
        assert response.ok
        assert len(response.body) == len(BODY) // 4
        assert stats.bytes_down == len(response.body)

    def test_corrupt_flips_one_bit(self):
        plan = FaultPlan(seed=1).add("*", FaultSpec(FaultKind.CORRUPT))
        network = make_network(plan)
        response, _ = network.get(URL, NOW)
        assert len(response.body) == len(BODY)
        diff = [
            (a ^ b)
            for a, b in zip(response.body, BODY)
            if a != b
        ]
        assert len(diff) == 1
        assert bin(diff[0]).count("1") == 1

    def test_stale_rewinds_endpoint_clock(self):
        seen = []

        class RecordingEndpoint:
            def handle(self, request, at):
                seen.append(at)
                from repro.net.http import HttpResponse

                return HttpResponse(HttpStatus.OK, b"ok")

        stale_by = datetime.timedelta(days=30)
        plan = FaultPlan(seed=1).add(
            "*", FaultSpec(FaultKind.STALE, stale_by=stale_by)
        )
        network = Network(faults=plan)
        network.register(URL, RecordingEndpoint())
        network.get(URL, NOW)
        assert seen == [NOW - stale_by]

    def test_faulted_request_counter(self):
        plan = FaultPlan(seed=1).add(
            "*", FaultSpec(FaultKind.SLOW, probability=0.5)
        )
        network = make_network(plan)
        for _ in range(40):
            network.get(URL, NOW)
        assert 0 < network.faulted_requests < 40


class TestProfiles:
    def test_known_profiles_build(self):
        for name in PROFILES:
            plan = plan_from_profile(name, seed=4)
            assert len(plan) == len(PROFILES[name])

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            plan_from_profile("mayhem")

    def test_none_profile_is_noop(self):
        plan = plan_from_profile("none", seed=4)
        assert plan.decide(URL, NOW).is_noop

    def test_chaos_profile_faults_a_lot(self):
        plan = plan_from_profile("chaos", seed=4)
        triggered = sum(
            0 if plan.decide(URL, NOW).is_noop else 1 for _ in range(200)
        )
        assert triggered > 20
