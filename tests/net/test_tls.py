"""TLS handshake + stapling tests."""

from __future__ import annotations

import datetime

import pytest

from repro.ca.authority import CertificateAuthority
from repro.net.tls import TlsClient, TlsServer
from repro.pki.keys import KeyPair
from repro.revocation.ocsp import CertStatus, OcspResponse
from repro.revocation.stapling import StapleCache, StaplePolicy

UTC = datetime.timezone.utc
NB = datetime.datetime(2014, 1, 1, tzinfo=UTC)
NA = datetime.datetime(2016, 1, 1, tzinfo=UTC)
NOW = datetime.datetime(2015, 3, 1, 12, 0, tzinfo=UTC)


@pytest.fixture(scope="module")
def chain():
    root = CertificateAuthority.create_root("TLS Root", "tls-root", NB, NA)
    leaf = root.issue_leaf(
        "tls.example", KeyPair.generate("tls-leaf").public_key, NB, NA,
        include_crl=False, include_ocsp=False,
    )
    return [leaf, root.certificate], root


def make_staple(root):
    return OcspResponse.build(
        responder_keys=root.keys,
        cert_status=CertStatus.GOOD,
        issuer_key_hash=root.issuer_key_hash,
        serial_number=1,
        this_update=NOW - datetime.timedelta(hours=1),
        next_update=NOW + datetime.timedelta(days=3),
    )


class TestTlsServer:
    def test_requires_chain(self):
        with pytest.raises(ValueError):
            TlsServer(chain=[])

    def test_handshake_returns_chain(self, chain):
        certs, _root = chain
        server = TlsServer(chain=certs)
        result = server.handshake(NOW, status_request=True)
        assert result.chain == tuple(certs)
        assert result.leaf is certs[0]
        assert result.staple is None
        assert not result.stapling_advertised
        assert server.handshakes_served == 1

    def test_stapling_disabled_ignores_request(self, chain):
        certs, root = chain
        cache = StapleCache()
        cache.warm(make_staple(root))
        server = TlsServer(chain=certs, stapling_enabled=False, staple_cache=cache)
        assert server.handshake(NOW, status_request=True).staple is None

    def test_warm_cache_staples(self, chain):
        certs, root = chain
        cache = StapleCache()
        cache.warm(make_staple(root))
        server = TlsServer(chain=certs, stapling_enabled=True, staple_cache=cache)
        result = server.handshake(NOW, status_request=True)
        assert result.staple is not None
        assert result.stapling_advertised

    def test_client_not_requesting_gets_no_staple(self, chain):
        certs, root = chain
        cache = StapleCache()
        cache.warm(make_staple(root))
        server = TlsServer(chain=certs, stapling_enabled=True, staple_cache=cache)
        assert server.handshake(NOW, status_request=False).staple is None

    def test_cold_cache_then_fetch(self, chain):
        """The Figure 3 mechanism end to end."""
        certs, root = chain
        staple = make_staple(root)
        server = TlsServer(
            chain=certs,
            stapling_enabled=True,
            staple_cache=StapleCache(fetch_delay=datetime.timedelta(seconds=2)),
            staple_fetcher=lambda at: staple,
        )
        first = server.handshake(NOW, status_request=True)
        assert first.staple is None  # cold cache
        second = server.handshake(
            NOW + datetime.timedelta(seconds=3), status_request=True
        )
        assert second.staple is staple


class TestTlsClient:
    def test_client_counts(self, chain):
        certs, root = chain
        cache = StapleCache(policy=StaplePolicy.ANY_STATUS)
        cache.warm(make_staple(root))
        server = TlsServer(chain=certs, stapling_enabled=True, staple_cache=cache)
        client = TlsClient(request_staple=True)
        client.connect(server, NOW)
        client.connect(server, NOW)
        assert client.handshakes == 2
        assert client.staples_received == 2

    def test_non_requesting_client(self, chain):
        certs, root = chain
        cache = StapleCache()
        cache.warm(make_staple(root))
        server = TlsServer(chain=certs, stapling_enabled=True, staple_cache=cache)
        client = TlsClient(request_staple=False)
        result = client.connect(server, NOW)
        assert result.staple is None
        assert client.staples_received == 0
