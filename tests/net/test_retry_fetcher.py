"""Retrying fetcher: outcome classification, retry counts, backoff and
failure accounting, circuit breaker, and negative caching."""

from __future__ import annotations

import datetime

import pytest

from repro.ca.authority import CertificateAuthority
from repro.net.cache import ClientCache
from repro.net.endpoints import CrlEndpoint, OcspEndpoint, StaticEndpoint
from repro.net.faults import FaultKind, FaultPlan, FaultSpec
from repro.net.fetcher import (
    CircuitBreaker,
    FetchOutcome,
    NetworkFetcher,
    RetryPolicy,
)
from repro.net.transport import FailureMode, Network
from repro.pki.keys import KeyPair

UTC = datetime.timezone.utc
NB = datetime.datetime(2014, 1, 1, tzinfo=UTC)
NA = datetime.datetime(2016, 1, 1, tzinfo=UTC)
NOW = datetime.datetime(2015, 3, 1, 12, 0, tzinfo=UTC)
ZERO = datetime.timedelta(0)


@pytest.fixture()
def ca():
    return CertificateAuthority.create_root(
        "Retry CA",
        "retry-ca",
        NB,
        NA,
        crl_base_url="http://crl.retry.example",
        ocsp_url="http://ocsp.retry.example/q",
    )


def wire(ca, **fetcher_kwargs):
    network = Network()
    url = ca.crl_publisher.urls[0]
    network.register(
        url, CrlEndpoint(lambda at: ca.crl_publisher.encode(url, at).to_der())
    )
    network.register(
        "http://ocsp.retry.example/q", OcspEndpoint(ca.ocsp_responder.respond)
    )
    fetcher = NetworkFetcher(
        network, clock_now=lambda: NOW, cache=ClientCache(), **fetcher_kwargs
    )
    return network, fetcher, url


MODE_OUTCOMES = [
    (FailureMode.NXDOMAIN, FetchOutcome.DNS_FAILURE),
    (FailureMode.HTTP_404, FetchOutcome.HTTP_ERROR),
    (FailureMode.NO_RESPONSE, FetchOutcome.TIMEOUT),
]


class TestOutcomeClassification:
    @pytest.mark.parametrize("mode,expected", MODE_OUTCOMES)
    def test_crl_failure_modes(self, ca, mode, expected):
        network, fetcher, url = wire(ca)
        network.set_failure(url, mode)
        result = fetcher.fetch_crl_result(url)
        assert result.value is None
        assert result.outcome is expected
        assert result.attempts == fetcher.retry_policy.max_attempts

    @pytest.mark.parametrize("mode,expected", MODE_OUTCOMES)
    def test_ocsp_failure_modes(self, ca, mode, expected):
        network, fetcher, _ = wire(ca)
        ocsp_url = "http://ocsp.retry.example/q"
        network.set_failure(ocsp_url, mode)
        result = fetcher.fetch_ocsp_result(ocsp_url, ca.issuer_key_hash, 1)
        assert result.value is None
        assert result.outcome is expected

    def test_garbage_body_is_parse_error(self):
        network = Network()
        network.register("http://g.example/x.crl", StaticEndpoint(b"not der"))
        fetcher = NetworkFetcher(network, clock_now=lambda: NOW)
        result = fetcher.fetch_crl_result("http://g.example/x.crl")
        assert result.outcome is FetchOutcome.PARSE_ERROR
        assert fetcher.stats.parse_errors == fetcher.retry_policy.max_attempts

    def test_non_http_url_classified_not_raised(self):
        network = Network()
        fetcher = NetworkFetcher(network, clock_now=lambda: NOW)
        result = fetcher.fetch_crl_result("ldap://dir.example/cn=crl")
        assert result.outcome is FetchOutcome.DNS_FAILURE
        assert fetcher.stats.failures == 1

    def test_success(self, ca):
        _, fetcher, url = wire(ca)
        result = fetcher.fetch_crl_result(url)
        assert result.ok and result.attempts == 1
        assert result.bytes_downloaded > 0
        assert result.latency > ZERO


class TestFailureAccounting:
    """Satellite bugfix: failed fetches must not be free."""

    def test_timeout_charges_budget_and_counts_fetch(self, ca):
        network, fetcher, url = wire(ca, retry_policy=RetryPolicy.no_retry())
        network.set_failure(url, FailureMode.NO_RESPONSE)
        assert fetcher.fetch_crl(url) is None
        assert fetcher.fetches == 1
        assert fetcher.latency_total >= network.timeout
        assert fetcher.stats.timeouts == 1

    def test_dns_failure_charges_rtt(self, ca):
        network, fetcher, url = wire(ca, retry_policy=RetryPolicy.no_retry())
        network.set_failure(url, FailureMode.NXDOMAIN)
        assert fetcher.fetch_crl(url) is None
        assert fetcher.fetches == 1
        assert fetcher.latency_total >= network.profile.rtt
        assert fetcher.stats.dns_failures == 1

    def test_retries_accumulate_backoff(self, ca):
        policy = RetryPolicy(max_attempts=3)
        network, fetcher, url = wire(ca, retry_policy=policy)
        network.set_failure(url, FailureMode.NO_RESPONSE)
        fetcher.fetch_crl(url)
        assert fetcher.stats.attempts == 3
        assert fetcher.stats.retries == 2
        assert fetcher.stats.backoff_total > ZERO
        # Total cost: 3 timeout budgets plus the backoff pauses.
        assert fetcher.latency_total >= 3 * network.timeout

    def test_backoff_is_seeded_and_deterministic(self, ca):
        def total(seed):
            network, fetcher, url = wire(
                ca, retry_policy=RetryPolicy(max_attempts=4), seed=seed
            )
            network.set_failure(url, FailureMode.NO_RESPONSE)
            fetcher.fetch_crl(url)
            return fetcher.stats.backoff_total

        assert total(1) == total(1)
        assert total(1) != total(2)


class TestRetryRecovery:
    def test_flaky_endpoint_recovered_by_retry(self, ca):
        # A fault plan that fails the first attempt deterministically for
        # this seed; retries must land a success.
        plan = FaultPlan(seed=11).add(
            "*", FaultSpec(FaultKind.FLAKY, probability=0.5)
        )
        network, fetcher, url = wire(
            ca, retry_policy=RetryPolicy(max_attempts=6)
        )
        network.install_faults(plan)
        result = fetcher.fetch_crl_result(url)
        assert result.ok
        assert fetcher.stats.successes == 1

    def test_no_retry_policy_makes_single_attempt(self, ca):
        network, fetcher, url = wire(ca, retry_policy=RetryPolicy.no_retry())
        network.set_failure(url, FailureMode.HTTP_404)
        result = fetcher.fetch_crl_result(url)
        assert result.attempts == 1
        assert fetcher.stats.retries == 0


class TestCircuitBreaker:
    def test_opens_after_threshold(self, ca):
        breaker = CircuitBreaker(failure_threshold=2)
        network, fetcher, url = wire(
            ca, retry_policy=RetryPolicy.no_retry(), breaker=breaker
        )
        network.set_failure(url, FailureMode.NO_RESPONSE)
        fetcher.fetch_crl(url)
        fetcher.fetch_crl(url)
        assert breaker.is_open("crl.retry.example")
        before = fetcher.stats.attempts
        result = fetcher.fetch_crl_result(url)
        assert result.outcome is FetchOutcome.BREAKER_OPEN
        assert fetcher.stats.attempts == before  # rejected locally
        assert fetcher.stats.breaker_rejections == 1

    def test_half_open_probe_closes_on_success(self, ca):
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after=datetime.timedelta(minutes=1)
        )
        clock = {"now": NOW}
        network = Network()
        url = ca.crl_publisher.urls[0]
        network.register(
            url, CrlEndpoint(lambda at: ca.crl_publisher.encode(url, at).to_der())
        )
        fetcher = NetworkFetcher(
            network,
            clock_now=lambda: clock["now"],
            retry_policy=RetryPolicy.no_retry(),
            breaker=breaker,
        )
        network.set_failure(url, FailureMode.NO_RESPONSE)
        fetcher.fetch_crl(url)
        assert breaker.is_open(url.split("//")[1].split("/")[0])
        # Still open inside the reset window.
        assert fetcher.fetch_crl_result(url).outcome is FetchOutcome.BREAKER_OPEN
        # After the window, the probe goes through and closes the circuit.
        network.clear_failure(url)
        clock["now"] = NOW + datetime.timedelta(minutes=2)
        result = fetcher.fetch_crl_result(url)
        assert result.ok
        assert not breaker.is_open("crl.retry.example")


class TestNegativeCache:
    def test_exhausted_failure_is_remembered(self, ca):
        policy = RetryPolicy(
            max_attempts=1, negative_cache_ttl=datetime.timedelta(minutes=5)
        )
        network, fetcher, url = wire(ca, retry_policy=policy)
        network.set_failure(url, FailureMode.HTTP_404)
        fetcher.fetch_crl(url)
        before = fetcher.stats.attempts
        result = fetcher.fetch_crl_result(url)
        assert result.outcome is FetchOutcome.NEGATIVE_CACHED
        assert fetcher.stats.attempts == before
        assert fetcher.stats.negative_cache_hits == 1

    def test_disabled_by_default(self, ca):
        network, fetcher, url = wire(ca, retry_policy=RetryPolicy.no_retry())
        network.set_failure(url, FailureMode.HTTP_404)
        fetcher.fetch_crl(url)
        before = fetcher.stats.attempts
        fetcher.fetch_crl(url)
        assert fetcher.stats.attempts == before + 1
