"""Client cache tests."""

from __future__ import annotations

import datetime
from dataclasses import dataclass

import pytest

from repro.net.cache import ClientCache

UTC = datetime.timezone.utc
NOW = datetime.datetime(2015, 3, 1, tzinfo=UTC)


@dataclass
class FakeCacheable:
    next_update: datetime.datetime

    def is_expired(self, at):
        return at > self.next_update


def fresh(hours=24):
    return FakeCacheable(NOW + datetime.timedelta(hours=hours))


class TestCache:
    def test_miss_then_hit(self):
        cache = ClientCache()
        assert cache.get("k", NOW) is None
        value = fresh()
        cache.put("k", value)
        assert cache.get("k", NOW) is value
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_expired_entry_evicted(self):
        cache = ClientCache()
        cache.put("k", fresh(hours=1))
        later = NOW + datetime.timedelta(hours=2)
        assert cache.get("k", later) is None
        assert len(cache) == 0

    def test_requires_expirable_values(self):
        with pytest.raises(TypeError):
            ClientCache().put("k", object())

    def test_capacity_eviction_earliest_expiry(self):
        cache = ClientCache(max_entries=2)
        early = fresh(hours=1)
        late = fresh(hours=48)
        cache.put("early", early)
        cache.put("late", late)
        cache.put("new", fresh(hours=24))
        # "early" (soonest expiry) must be the evicted one.
        assert cache.get("late", NOW) is late
        assert cache.get("early", NOW) is None

    def test_invalidate_and_clear(self):
        cache = ClientCache()
        cache.put("k", fresh())
        cache.invalidate("k")
        assert cache.get("k", NOW) is None
        cache.put("k", fresh())
        cache.clear()
        assert len(cache) == 0

    def test_max_entries_positive(self):
        with pytest.raises(ValueError):
            ClientCache(max_entries=0)

    def test_crl_caching_limited_by_short_expiry(self):
        """§5.2: 95% of CRLs expire within 24h, limiting cache savings."""
        cache = ClientCache()
        cache.put("crl", fresh(hours=24))
        tomorrow = NOW + datetime.timedelta(hours=25)
        assert cache.get("crl", tomorrow) is None  # must re-download
