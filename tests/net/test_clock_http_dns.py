"""SimClock, HTTP message model, and DNS tests."""

from __future__ import annotations

import datetime

import pytest

from repro.net.clock import SimClock
from repro.net.dns import DnsError, Resolver
from repro.net.http import HttpRequest, HttpResponse, HttpStatus, split_url

UTC = datetime.timezone.utc


class TestSimClock:
    def test_advance(self):
        clock = SimClock(datetime.datetime(2015, 1, 1, tzinfo=UTC))
        clock.advance(datetime.timedelta(hours=2))
        assert clock.now.hour == 2

    def test_naive_start_becomes_utc(self):
        clock = SimClock(datetime.datetime(2015, 1, 1))
        assert clock.now.tzinfo is UTC

    def test_no_backwards(self):
        clock = SimClock(datetime.datetime(2015, 1, 1, tzinfo=UTC))
        with pytest.raises(ValueError):
            clock.advance(datetime.timedelta(seconds=-1))
        with pytest.raises(ValueError):
            clock.advance_to(datetime.datetime(2014, 1, 1, tzinfo=UTC))

    def test_sleep_until_next_period(self):
        clock = SimClock(datetime.datetime(2015, 1, 1, 3, 30, tzinfo=UTC))
        clock.sleep_until_next(datetime.timedelta(hours=1))
        assert clock.now == datetime.datetime(2015, 1, 1, 4, 0, tzinfo=UTC)


class TestHttp:
    def test_split_url(self):
        assert split_url("http://host.example/path/x") == ("host.example", "/path/x")
        assert split_url("https://host.example") == ("host.example", "/")

    def test_split_url_rejects_other_schemes(self):
        with pytest.raises(ValueError):
            split_url("ldap://dir.example/crl")

    def test_request_host_path(self):
        request = HttpRequest("GET", "http://a.example/x")
        assert request.host == "a.example"
        assert request.path == "/x"

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError):
            HttpRequest("PUT", "http://a.example/")

    def test_response_ok(self):
        assert HttpResponse(HttpStatus.OK).ok
        assert not HttpResponse(HttpStatus.NOT_FOUND).ok


class TestResolver:
    def test_register_resolve(self):
        resolver = Resolver()
        resolver.register("a.example", "10.0.0.1")
        assert resolver.resolve("a.example") == "10.0.0.1"
        assert resolver.knows("a.example")

    def test_case_insensitive(self):
        resolver = Resolver()
        resolver.register("A.Example", "10.0.0.1")
        assert resolver.resolve("a.example") == "10.0.0.1"

    def test_nxdomain(self):
        with pytest.raises(DnsError):
            Resolver().resolve("missing.example")

    def test_poison_and_heal(self):
        resolver = Resolver()
        resolver.register("a.example", "10.0.0.1")
        resolver.poison("a.example")
        with pytest.raises(DnsError):
            resolver.resolve("a.example")
        assert not resolver.knows("a.example")
        resolver.heal("a.example")
        assert resolver.resolve("a.example") == "10.0.0.1"

    def test_unregister(self):
        resolver = Resolver()
        resolver.register("a.example", "10.0.0.1")
        resolver.unregister("a.example")
        with pytest.raises(DnsError):
            resolver.resolve("a.example")
