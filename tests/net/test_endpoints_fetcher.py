"""Endpoint and NetworkFetcher integration tests over a real CA."""

from __future__ import annotations

import datetime

import pytest

from repro.ca.authority import CertificateAuthority
from repro.net.cache import ClientCache
from repro.net.endpoints import CrlEndpoint, OcspEndpoint, StaticEndpoint
from repro.net.fetcher import NetworkFetcher
from repro.net.http import HttpRequest
from repro.net.transport import FailureMode, Network
from repro.pki.keys import KeyPair
from repro.revocation.ocsp import CertStatus, OcspRequest

UTC = datetime.timezone.utc
NB = datetime.datetime(2014, 1, 1, tzinfo=UTC)
NA = datetime.datetime(2016, 1, 1, tzinfo=UTC)
NOW = datetime.datetime(2015, 3, 1, 12, 0, tzinfo=UTC)


@pytest.fixture()
def ca():
    return CertificateAuthority.create_root(
        "Endpoint CA",
        "endpoint-ca",
        NB,
        NA,
        crl_base_url="http://crl.endpoint.example",
        ocsp_url="http://ocsp.endpoint.example/q",
    )


@pytest.fixture()
def wired(ca):
    network = Network()
    url = ca.crl_publisher.urls[0]
    network.register(
        url, CrlEndpoint(lambda at: ca.crl_publisher.encode(url, at).to_der())
    )
    network.register("http://ocsp.endpoint.example/q", OcspEndpoint(ca.ocsp_responder.respond))
    fetcher = NetworkFetcher(network, clock_now=lambda: NOW, cache=ClientCache())
    return network, fetcher, url


class TestCrlEndpoint:
    def test_serves_current_crl(self, ca, wired):
        network, fetcher, url = wired
        leaf = ca.issue_leaf("a.example", KeyPair.generate("l").public_key, NB, NA)
        ca.revoke(leaf.serial_number, NOW - datetime.timedelta(days=1))
        crl = fetcher.fetch_crl(url)
        assert crl is not None
        assert crl.is_revoked(leaf.serial_number)
        assert not crl.is_expired(NOW)

    def test_post_rejected(self, ca, wired):
        network, _, url = wired
        response, _ = network.request(HttpRequest("POST", url, b""), NOW)
        assert not response.ok

    def test_fetch_failure_returns_none(self, wired):
        network, fetcher, url = wired
        network.set_failure(url, FailureMode.NO_RESPONSE)
        assert fetcher.fetch_crl(url) is None

    def test_404_returns_none(self, wired):
        network, fetcher, url = wired
        network.set_failure(url, FailureMode.HTTP_404)
        assert fetcher.fetch_crl(url) is None

    def test_garbage_body_returns_none(self):
        network = Network()
        network.register("http://crl.g.example/x.crl", StaticEndpoint(b"not der"))
        fetcher = NetworkFetcher(network, clock_now=lambda: NOW)
        assert fetcher.fetch_crl("http://crl.g.example/x.crl") is None

    def test_crl_caching(self, ca, wired):
        network, fetcher, url = wired
        fetcher.fetch_crl(url)
        first_fetches = fetcher.fetches
        fetcher.fetch_crl(url)
        assert fetcher.fetches == first_fetches  # served from cache


class TestOcspEndpoint:
    def test_good_and_revoked(self, ca, wired):
        _, fetcher, _ = wired
        good = ca.issue_leaf("g.example", KeyPair.generate("g").public_key, NB, NA)
        bad = ca.issue_leaf("b.example", KeyPair.generate("b").public_key, NB, NA)
        ca.revoke(bad.serial_number, NOW - datetime.timedelta(days=1))
        r_good = fetcher.fetch_ocsp(
            "http://ocsp.endpoint.example/q", ca.issuer_key_hash, good.serial_number
        )
        r_bad = fetcher.fetch_ocsp(
            "http://ocsp.endpoint.example/q", ca.issuer_key_hash, bad.serial_number
        )
        assert r_good.cert_status is CertStatus.GOOD
        assert r_bad.cert_status is CertStatus.REVOKED

    def test_unknown_serial(self, ca, wired):
        _, fetcher, _ = wired
        response = fetcher.fetch_ocsp(
            "http://ocsp.endpoint.example/q", ca.issuer_key_hash, 999_999
        )
        assert response.cert_status is CertStatus.UNKNOWN

    def test_post_only_responder_rejects_get(self, ca):
        # Stock OpenSSL responders accept only POST (§6.2 footnote 18).
        network = Network()
        network.register(
            "http://ocsp.endpoint.example/q",
            OcspEndpoint(ca.ocsp_responder.respond, accept_get=False),
        )
        fetcher = NetworkFetcher(network, clock_now=lambda: NOW)
        assert (
            fetcher.fetch_ocsp(
                "http://ocsp.endpoint.example/q", ca.issuer_key_hash, 1, use_get=True
            )
            is None
        )
        leaf = ca.issue_leaf("p.example", KeyPair.generate("p").public_key, NB, NA)
        response = fetcher.fetch_ocsp(
            "http://ocsp.endpoint.example/q",
            ca.issuer_key_hash,
            leaf.serial_number,
            use_get=False,
        )
        assert response is not None and response.cert_status is CertStatus.GOOD

    def test_malformed_request_yields_error_response(self, ca, wired):
        network, _, _ = wired
        response, _ = network.request(
            HttpRequest("POST", "http://ocsp.endpoint.example/q", b"\xff\xff"), NOW
        )
        assert response.ok  # HTTP-level OK carrying an OCSP error
        from repro.revocation.ocsp import OcspResponse

        parsed = OcspResponse.from_der(response.body)
        assert not parsed.is_successful

    def test_fetcher_accounts_cost(self, ca, wired):
        _, fetcher, url = wired
        fetcher.fetch_crl(url)
        assert fetcher.bytes_downloaded > 0
        assert fetcher.latency_total > datetime.timedelta(0)
