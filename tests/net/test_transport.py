"""Network transport: routing, failures, and cost accounting."""

from __future__ import annotations

import datetime

import pytest

from repro.net.dns import DnsError
from repro.net.endpoints import StaticEndpoint
from repro.net.http import HttpStatus
from repro.net.transport import FailureMode, LinkProfile, Network, TimeoutError_

UTC = datetime.timezone.utc
NOW = datetime.datetime(2015, 3, 1, tzinfo=UTC)


@pytest.fixture()
def network():
    net = Network()
    net.register("http://crl.example/a.crl", StaticEndpoint(b"x" * 1000))
    return net


class TestRouting:
    def test_get_ok(self, network):
        response, stats = network.get("http://crl.example/a.crl", NOW)
        assert response.ok
        assert len(response.body) == 1000
        assert stats.bytes_down == 1000

    def test_unknown_path_404(self, network):
        response, _ = network.get("http://crl.example/missing", NOW)
        assert response.status == HttpStatus.NOT_FOUND

    def test_unknown_host_nxdomain(self, network):
        with pytest.raises(DnsError):
            network.get("http://other.example/x", NOW)

    def test_accounting(self, network):
        network.get("http://crl.example/a.crl", NOW)
        network.get("http://crl.example/a.crl", NOW)
        assert network.total_requests == 2
        assert network.total_bytes == 2000


class TestFailureInjection:
    def test_nxdomain(self, network):
        network.set_failure("http://crl.example/a.crl", FailureMode.NXDOMAIN)
        with pytest.raises(DnsError):
            network.get("http://crl.example/a.crl", NOW)

    def test_http_404(self, network):
        network.set_failure("http://crl.example/a.crl", FailureMode.HTTP_404)
        response, _ = network.get("http://crl.example/a.crl", NOW)
        assert response.status == HttpStatus.NOT_FOUND

    def test_no_response(self, network):
        network.set_failure("http://crl.example/a.crl", FailureMode.NO_RESPONSE)
        with pytest.raises(TimeoutError_):
            network.get("http://crl.example/a.crl", NOW)

    def test_clear_failure(self, network):
        network.set_failure("http://crl.example/a.crl", FailureMode.NO_RESPONSE)
        network.clear_failure("http://crl.example/a.crl")
        response, _ = network.get("http://crl.example/a.crl", NOW)
        assert response.ok

    def test_nxdomain_heals_when_failure_changes(self, network):
        network.set_failure("http://crl.example/a.crl", FailureMode.NXDOMAIN)
        network.set_failure("http://crl.example/a.crl", FailureMode.HTTP_404)
        response, _ = network.get("http://crl.example/a.crl", NOW)
        assert response.status == HttpStatus.NOT_FOUND

    def test_sibling_path_does_not_heal_nxdomain(self, network):
        # Bugfix: a non-NXDOMAIN mode on one path must not clobber an
        # NXDOMAIN set on a sibling path of the same host (DNS failures
        # are host-wide).
        network.register("http://crl.example/b.crl", StaticEndpoint(b"y" * 10))
        network.set_failure("http://crl.example/a.crl", FailureMode.NXDOMAIN)
        network.set_failure("http://crl.example/b.crl", FailureMode.HTTP_404)
        with pytest.raises(DnsError):
            network.get("http://crl.example/a.crl", NOW)
        # Clearing the NXDOMAIN path heals the host; the sibling keeps
        # its own failure mode.
        network.clear_failure("http://crl.example/a.crl")
        response, _ = network.get("http://crl.example/b.crl", NOW)
        assert response.status == HttpStatus.NOT_FOUND
        response, _ = network.get("http://crl.example/a.crl", NOW)
        assert response.ok

    def test_failed_requests_carry_cost(self, network):
        network.set_failure("http://crl.example/a.crl", FailureMode.NO_RESPONSE)
        with pytest.raises(TimeoutError_) as excinfo:
            network.get("http://crl.example/a.crl", NOW)
        assert excinfo.value.stats.latency == network.timeout
        network.set_failure("http://crl.example/a.crl", FailureMode.NXDOMAIN)
        with pytest.raises(DnsError) as excinfo:
            network.get("http://crl.example/a.crl", NOW)
        assert excinfo.value.stats.latency == network.profile.rtt


class TestLinkProfile:
    def test_latency_grows_with_bytes(self):
        profile = LinkProfile()
        assert profile.transfer_time(1_000_000) > profile.transfer_time(100)

    def test_rtt_floor(self):
        profile = LinkProfile(rtt=datetime.timedelta(milliseconds=40))
        assert profile.transfer_time(0) == datetime.timedelta(milliseconds=40)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            LinkProfile().transfer_time(-1)

    def test_mobile_profile_slower(self):
        # §6.4: mobile links make revocation fetching costlier.
        broadband = LinkProfile().transfer_time(50 * 1024)
        mobile = LinkProfile.mobile().transfer_time(50 * 1024)
        assert mobile > 2 * broadband

    def test_crl_vs_ocsp_cost_gap(self):
        """The paper's §5.2 point: a 51 KB CRL costs far more than a
        <1 KB OCSP exchange."""
        profile = LinkProfile()
        crl_time = profile.transfer_time(51 * 1024)
        ocsp_time = profile.transfer_time(900)
        assert crl_time > 1.5 * ocsp_time
