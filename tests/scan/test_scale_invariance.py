"""Scale invariance: the calibration contract across corpus sizes.

The paper's fractions must hold whether the corpus has 5 k or 20 k
certificates; absolute per-CRL sizes must hold too (that is the point of
scaling shard counts with the corpus).
"""

from __future__ import annotations

import pytest

from repro.scan.calibration import Calibration
from repro.scan.ecosystem import Ecosystem


@pytest.fixture(scope="module")
def small():
    return Ecosystem(Calibration(scale=0.001))


@pytest.fixture(scope="module")
def large():
    return Ecosystem(Calibration(scale=0.004))


def _fresh_revoked(eco):
    end = eco.calibration.measurement_end
    fresh = eco.fresh_leaves(end)
    return sum(1 for l in fresh if l.is_revoked_by(end)) / len(fresh)


class TestScaleInvariance:
    def test_leaf_counts_scale_linearly(self, small, large):
        ratio = len(large.leaves) / len(small.leaves)
        assert 3.5 <= ratio <= 4.5

    def test_fresh_revoked_fraction_stable(self, small, large):
        assert abs(_fresh_revoked(small) - _fresh_revoked(large)) < 0.025

    def test_pointer_fractions_stable(self, small, large):
        for eco in (small, large):
            ocsp = sum(1 for l in eco.leaves if l.has_ocsp) / len(eco.leaves)
            assert 0.90 <= ocsp <= 0.99

    def test_per_crl_sizes_scale_invariant(self, small, large):
        """Per-CRL byte sizes are absolute quantities: the weighted median
        must not shrink with the corpus."""
        from repro.core.stats import weighted_cdf

        def weighted_median(eco):
            end = eco.calibration.measurement_end
            return weighted_cdf(
                (crl.size_bytes(end), crl.assigned_cert_count) for crl in eco.crls
            ).median

        small_median = weighted_median(small)
        large_median = weighted_median(large)
        assert 0.25 <= small_median / large_median <= 4.0

    def test_crl_count_scales_sublinearly(self, small, large):
        ratio = len(large.crls) / len(small.crls)
        leaf_ratio = len(large.leaves) / len(small.leaves)
        assert 1.0 < ratio <= leaf_ratio
