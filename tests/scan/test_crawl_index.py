"""The incremental crawl index must agree with the naive per-day rescans.

``CrlCrawler`` keeps its pre-index implementations as ``*_naive``
reference methods; every fast query is compared against them here over
the shared scale-0.002 ecosystem plus hand-built edge cases.
"""

from __future__ import annotations

import datetime

import pytest

from repro.pki.name import Name
from repro.scan.crawl_index import CrawlIndex, CrlSeries
from repro.scan.crawler import CrlCrawler
from repro.scan.crl_model import CrlEntryRecord, EcosystemCrl


@pytest.fixture(scope="module")
def crawler(ecosystem):
    return CrlCrawler(ecosystem)


def _sample_days(calibration, n=7):
    dates = calibration.crawl_dates
    step = max(1, len(dates) // n)
    return dates[::step]


class TestIndexMatchesNaive:
    def test_entry_counts(self, crawler, ecosystem):
        for day in _sample_days(ecosystem.calibration):
            assert crawler.entry_counts_at(day) == crawler.entry_counts_at_naive(day)

    def test_additions(self, crawler, ecosystem):
        for day in _sample_days(ecosystem.calibration):
            for crl in ecosystem.crls:
                assert crl.series.additions_on(day) == CrlCrawler._additions_on_naive(
                    crl, day
                )

    def test_daily_total_additions(self, crawler):
        assert crawler.daily_total_additions() == crawler.daily_total_additions_naive()

    def test_sizes(self, crawler, ecosystem):
        # The naive leg re-encodes every visible entry, so sample sparsely.
        for day in _sample_days(ecosystem.calibration, n=2):
            assert crawler.sizes_at(day) == crawler.sizes_at_naive(day)

    def test_outside_crawl_window(self, crawler, ecosystem):
        cal = ecosystem.calibration
        for day in (
            cal.crawl_start - datetime.timedelta(days=400),
            cal.crawl_end + datetime.timedelta(days=400),
        ):
            assert crawler.entry_counts_at(day) == crawler.entry_counts_at_naive(day)


def _make_crl(entries=()):
    crl = EcosystemCrl(
        url="http://crl.example/unit.crl",
        brand="Unit",
        intermediate_id=0,
        issuer_name=Name.make("Unit CA", organization="Unit CA"),
        issuer_key_hash=b"\x00" * 32,
        signature_size=256,
        signature_algorithm_oid="1.2.840.113549.1.1.11",
        serial_bytes=16,
    )
    for entry in entries:
        crl.add_entry(entry)
    return crl


class TestSeriesInvalidation:
    def test_add_entry_invalidates(self):
        day = datetime.date(2014, 10, 10)
        crl = _make_crl()
        assert crl.entry_count(day) == 0
        crl.add_entry(
            CrlEntryRecord(
                serial_number=1,
                revoked_at=day,
                reason=None,
                cert_not_after=day + datetime.timedelta(days=90),
            )
        )
        assert crl.entry_count(day) == 1
        assert crl.additions_on(day) == 1

    def test_field_assignment_invalidates(self):
        day = datetime.date(2014, 10, 10)
        crl = _make_crl(
            [
                CrlEntryRecord(
                    serial_number=1,
                    revoked_at=day,
                    reason=None,
                    cert_not_after=day + datetime.timedelta(days=30),
                )
            ]
        )
        assert crl.entry_count(day) == 1
        crl.entries = []
        assert crl.entry_count(day) == 0

    def test_in_place_mutation_needs_explicit_invalidate(self):
        day = datetime.date(2014, 10, 10)
        record = CrlEntryRecord(
            serial_number=1,
            revoked_at=day,
            reason=None,
            cert_not_after=day + datetime.timedelta(days=30),
        )
        crl = _make_crl([record])
        assert crl.entry_count(day + datetime.timedelta(days=10)) == 1
        record.cert_not_after = day + datetime.timedelta(days=5)
        crl.invalidate_series()
        assert crl.entry_count(day + datetime.timedelta(days=10)) == 0

    def test_rejects_entry_expiring_before_revocation(self):
        day = datetime.date(2014, 10, 10)
        crl = _make_crl(
            [
                CrlEntryRecord(
                    serial_number=1,
                    revoked_at=day,
                    reason=None,
                    cert_not_after=day - datetime.timedelta(days=1),
                )
            ]
        )
        with pytest.raises(ValueError):
            CrlSeries(crl)


class TestCrawlIndex:
    def test_memoized_daily_totals(self, ecosystem):
        index = CrawlIndex(ecosystem)
        first = index.daily_total_additions()
        assert index._daily_additions is not None
        # Returned dicts are defensive copies of one memoised sweep.
        second = index.daily_total_additions()
        assert second == first and second is not first

    def test_total_entries_sums_counts(self, ecosystem):
        index = CrawlIndex(ecosystem)
        day = ecosystem.calibration.crawl_end
        assert index.total_entries(day) == sum(index.entry_counts_at(day).values())

    def test_shared_by_pipeline(self, study):
        assert study.crawler.index is study.crawl_index
