"""Shard-determinism lockdown for the sharded ecosystem generator.

The contract (docs/PERFORMANCE.md): partitioning brands into shards is a
scheduling decision, never a semantic one.  For a fixed calibration the
corpus -- every leaf, CRL entry, serial, and Alexa rank -- is
byte-identical whether it was built with 1, 2, or 4 shards, in-process
or across worker processes.  :func:`repro.scan.corpus.corpus_digest`
hashes every column, so digest equality is corpus equality.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ca.profiles import PAPER_CA_PROFILES
from repro.scan import shardgen
from repro.scan.calibration import Calibration
from repro.scan.corpus import corpus_digest, encode_corpus
from repro.scan.ecosystem import Ecosystem

SCALE = 0.0005


def _digest(ecosystem: Ecosystem) -> str:
    arrays, _ = encode_corpus(ecosystem)
    return corpus_digest(arrays)


@pytest.fixture(scope="module")
def reference() -> str:
    return _digest(Ecosystem(Calibration(scale=SCALE)))


class TestShardInvariance:
    @pytest.mark.parametrize("shards", [2, 4, 13, 64])
    def test_shard_count_never_changes_the_corpus(self, reference, shards):
        eco = Ecosystem(Calibration(scale=SCALE), shards=shards)
        assert _digest(eco) == reference

    def test_worker_processes_never_change_the_corpus(self, reference):
        eco = Ecosystem(Calibration(scale=SCALE), shards=4, workers=2)
        assert _digest(eco) == reference

    def test_different_seed_changes_the_corpus(self, reference):
        eco = Ecosystem(Calibration(scale=SCALE, seed=7))
        assert _digest(eco) != reference

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=1, max_value=2**31),
        shards=st.integers(min_value=1, max_value=8),
    )
    def test_property_shards_invariant_per_seed(self, seed, shards):
        cal = Calibration(scale=SCALE, seed=seed)
        assert _digest(Ecosystem(cal, shards=shards)) == _digest(Ecosystem(cal))


class TestShardPlan:
    @pytest.mark.parametrize("shards", [1, 2, 4, 13, 100])
    def test_plan_partitions_every_brand_exactly_once(self, shards):
        cal = Calibration(scale=SCALE)
        plan = shardgen.plan_shards(cal, PAPER_CA_PROFILES, shards)
        assert len(plan) == min(shards, len(PAPER_CA_PROFILES))
        names = [name for group in plan for name in group]
        assert sorted(names) == sorted(p.name for p in PAPER_CA_PROFILES)

    def test_plan_is_deterministic(self):
        cal = Calibration(scale=SCALE)
        assert shardgen.plan_shards(
            cal, PAPER_CA_PROFILES, 4
        ) == shardgen.plan_shards(cal, PAPER_CA_PROFILES, 4)

    def test_plan_balances_by_cert_count(self):
        """Greedy bin-packing: no shard holds everything when 4 are asked
        for and there are plenty of brands to spread."""
        cal = Calibration(scale=SCALE)
        plan = shardgen.plan_shards(cal, PAPER_CA_PROFILES, 4)
        assert all(group for group in plan)


class TestLayoutInvariants:
    def test_cert_ids_are_positional(self):
        eco = Ecosystem(Calibration(scale=SCALE), shards=4)
        for i, leaf in enumerate(eco.leaves):
            assert leaf.cert_id == i

    def test_layouts_cover_the_id_space(self):
        cal = Calibration(scale=SCALE)
        layouts = shardgen.layout_brands(cal, PAPER_CA_PROFILES)
        next_cert = next_crl = 0
        for layout in layouts:
            assert layout.cert_base == next_cert
            assert layout.crl_base == next_crl
            next_cert += layout.cert_count
            next_crl += layout.crl_count
