"""Out-of-core corpus store round-trip lockdown.

Generate -> persist (SQLite columnar store) -> reload must reproduce the
corpus byte-for-byte: same corpus digest, same report bytes.  Unreadable
or mismatched stores are cache misses, never crashes -- ``run_all``
workers depend on that.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro import api
from repro.core.pipeline import MeasurementStudy
from repro.scan import corpus, corpus_store
from repro.scan.calibration import Calibration
from repro.scan.datastore import ArtifactCache
from repro.scan.ecosystem import Ecosystem

SCALE = 0.0005


@pytest.fixture(scope="module")
def calibration() -> Calibration:
    return Calibration(scale=SCALE)


@pytest.fixture(scope="module")
def generated(calibration) -> Ecosystem:
    return Ecosystem(calibration, shards=2)


@pytest.fixture(scope="module")
def store_path(calibration, generated, tmp_path_factory):
    cache = ArtifactCache(tmp_path_factory.mktemp("store"))
    return cache.store_ecosystem(calibration, generated)


@pytest.fixture(scope="module")
def reloaded(calibration, store_path) -> Ecosystem:
    arrays, meta = corpus_store.read_corpus(store_path)
    return Ecosystem.from_corpus(calibration, arrays, meta)


class TestRoundTrip:
    def test_corpus_digest_survives_the_store(self, generated, reloaded):
        original = corpus.corpus_digest(corpus.encode_corpus(generated)[0])
        restored = corpus.corpus_digest(corpus.encode_corpus(reloaded)[0])
        assert restored == original

    def test_leaf_records_are_equal(self, generated, reloaded):
        assert len(reloaded.leaves) == len(generated.leaves)
        stride = max(1, len(generated.leaves) // 200)
        for a, b in zip(
            generated.leaves[::stride], reloaded.leaves[::stride]
        ):
            assert a == b

    def test_crl_population_is_equal(self, calibration, generated, reloaded):
        end = calibration.measurement_end
        assert len(reloaded.crls) == len(generated.crls)
        for a, b in zip(generated.crls, reloaded.crls):
            assert a.url == b.url
            assert a.assigned_cert_count == b.assigned_cert_count
            assert len(a.entries) == len(b.entries)
            assert a.series.entry_count(end) == b.series.entry_count(end)

    def test_meta_describes_the_corpus(self, store_path, generated):
        meta = corpus_store.read_meta(store_path)
        assert meta["format"] == corpus.CORPUS_FORMAT
        assert meta["leaf_count"] == len(generated.leaves)
        assert meta["scale"] == repr(SCALE)

    def test_no_temp_files_left_behind(self, store_path):
        leftovers = [
            p for p in store_path.parent.iterdir() if p.name != store_path.name
        ]
        assert leftovers == []


class TestReportBytesUnchanged:
    """In-memory vs store-backed study: identical report bytes."""

    @pytest.fixture(scope="class")
    def in_memory(self, calibration) -> MeasurementStudy:
        return MeasurementStudy(calibration=calibration)

    @pytest.fixture(scope="class")
    def store_backed(self, calibration, tmp_path_factory) -> MeasurementStudy:
        cache_dir = tmp_path_factory.mktemp("warm")
        # First study populates the store; the one under test only reads.
        MeasurementStudy(calibration=calibration, cache_dir=cache_dir).ecosystem
        return MeasurementStudy(calibration=calibration, cache_dir=cache_dir)

    @pytest.mark.parametrize("experiment_id", ["section3", "fig2", "fig7"])
    def test_report_render_is_byte_identical(
        self, in_memory, store_backed, experiment_id
    ):
        a = api.run_one(experiment_id, in_memory).render()
        b = api.run_one(experiment_id, store_backed).render()
        assert a == b

    def test_scans_are_identical(self, in_memory, store_backed):
        assert in_memory.scans == store_backed.scans


class TestMissSemantics:
    def test_missing_store_is_a_miss(self, calibration, tmp_path):
        assert ArtifactCache(tmp_path).load_ecosystem(calibration) is None

    def test_garbage_store_is_a_miss(self, calibration, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.ecosystem_path(calibration).write_bytes(b"not a sqlite file")
        assert cache.load_ecosystem(calibration) is None
        assert not cache.has_ecosystem(calibration)

    def test_schema_mismatch_is_a_miss(self, calibration, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.ecosystem_path(calibration)
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE wrong (x)")
        connection.commit()
        connection.close()
        assert cache.load_ecosystem(calibration) is None

    def test_other_calibration_never_hits(
        self, calibration, generated, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        cache.store_ecosystem(calibration, generated)
        other = Calibration(scale=SCALE, seed=calibration.seed + 1)
        assert cache.load_ecosystem(other) is None
        assert cache.has_ecosystem(calibration)
        assert not cache.has_ecosystem(other)


class TestApiSurface:
    def test_build_corpus_builds_then_reuses(self, tmp_path):
        first = api.build_corpus(tmp_path, scale=SCALE, shards=2)
        assert first["rebuilt"] is True
        second = api.build_corpus(tmp_path, scale=SCALE)
        assert second["rebuilt"] is False
        assert second["corpus_digest"] == first["corpus_digest"]
        assert api.corpus_info(first["path"])["leaf_count"] == first["leaf_count"]
        listed = api.list_corpora(tmp_path)
        assert [info["path"] for info in listed] == [first["path"]]
