"""Out-of-core corpus store round-trip lockdown.

Generate -> persist (SQLite columnar store) -> reload must reproduce the
corpus byte-for-byte: same corpus digest, same report bytes.  Unreadable
or mismatched stores are cache misses, never crashes -- ``run_all``
workers depend on that.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro import api
from repro.core.pipeline import MeasurementStudy
from repro.scan import corpus, corpus_store
from repro.scan.calibration import Calibration
from repro.scan.datastore import ArtifactCache
from repro.scan.ecosystem import Ecosystem

SCALE = 0.0005


@pytest.fixture(scope="module")
def calibration() -> Calibration:
    return Calibration(scale=SCALE)


@pytest.fixture(scope="module")
def generated(calibration) -> Ecosystem:
    return Ecosystem(calibration, shards=2)


@pytest.fixture(scope="module")
def store_path(calibration, generated, tmp_path_factory):
    cache = ArtifactCache(tmp_path_factory.mktemp("store"))
    return cache.store_ecosystem(calibration, generated)


@pytest.fixture(scope="module")
def reloaded(calibration, store_path) -> Ecosystem:
    arrays, meta = corpus_store.read_corpus(store_path)
    return Ecosystem.from_corpus(calibration, arrays, meta)


class TestRoundTrip:
    def test_corpus_digest_survives_the_store(self, generated, reloaded):
        original = corpus.corpus_digest(corpus.encode_corpus(generated)[0])
        restored = corpus.corpus_digest(corpus.encode_corpus(reloaded)[0])
        assert restored == original

    def test_leaf_records_are_equal(self, generated, reloaded):
        assert len(reloaded.leaves) == len(generated.leaves)
        stride = max(1, len(generated.leaves) // 200)
        for a, b in zip(
            generated.leaves[::stride], reloaded.leaves[::stride]
        ):
            assert a == b

    def test_crl_population_is_equal(self, calibration, generated, reloaded):
        end = calibration.measurement_end
        assert len(reloaded.crls) == len(generated.crls)
        for a, b in zip(generated.crls, reloaded.crls):
            assert a.url == b.url
            assert a.assigned_cert_count == b.assigned_cert_count
            assert len(a.entries) == len(b.entries)
            assert a.series.entry_count(end) == b.series.entry_count(end)

    def test_meta_describes_the_corpus(self, store_path, generated):
        meta = corpus_store.read_meta(store_path)
        assert meta["format"] == corpus.CORPUS_FORMAT
        assert meta["leaf_count"] == len(generated.leaves)
        assert meta["scale"] == repr(SCALE)

    def test_no_temp_files_left_behind(self, store_path):
        leftovers = [
            p for p in store_path.parent.iterdir() if p.name != store_path.name
        ]
        assert leftovers == []


class TestReportBytesUnchanged:
    """In-memory vs store-backed study: identical report bytes."""

    @pytest.fixture(scope="class")
    def in_memory(self, calibration) -> MeasurementStudy:
        return MeasurementStudy(calibration=calibration)

    @pytest.fixture(scope="class")
    def store_backed(self, calibration, tmp_path_factory) -> MeasurementStudy:
        cache_dir = tmp_path_factory.mktemp("warm")
        # First study populates the store; the one under test only reads.
        MeasurementStudy(calibration=calibration, cache_dir=cache_dir).ecosystem
        return MeasurementStudy(calibration=calibration, cache_dir=cache_dir)

    @pytest.mark.parametrize("experiment_id", ["section3", "fig2", "fig7"])
    def test_report_render_is_byte_identical(
        self, in_memory, store_backed, experiment_id
    ):
        a = api.study.run_one(experiment_id, in_memory).render()
        b = api.study.run_one(experiment_id, store_backed).render()
        assert a == b

    def test_scans_are_identical(self, in_memory, store_backed):
        assert in_memory.scans == store_backed.scans


class TestMissSemantics:
    def test_missing_store_is_a_miss(self, calibration, tmp_path):
        assert ArtifactCache(tmp_path).load_ecosystem(calibration) is None

    def test_garbage_store_is_a_miss(self, calibration, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.ecosystem_path(calibration).write_bytes(b"not a sqlite file")
        assert cache.load_ecosystem(calibration) is None
        assert not cache.has_ecosystem(calibration)

    def test_schema_mismatch_is_a_miss(self, calibration, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.ecosystem_path(calibration)
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE wrong (x)")
        connection.commit()
        connection.close()
        assert cache.load_ecosystem(calibration) is None

    def test_other_calibration_never_hits(
        self, calibration, generated, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        cache.store_ecosystem(calibration, generated)
        other = Calibration(scale=SCALE, seed=calibration.seed + 1)
        assert cache.load_ecosystem(other) is None
        assert cache.has_ecosystem(calibration)
        assert not cache.has_ecosystem(other)


class TestCorruptionSemantics:
    """Damaged stores are cache misses and verify findings -- never
    exceptions (truncation, bit rot, tampered digests, torn writes)."""

    @pytest.fixture()
    def cache(self, calibration, store_path, tmp_path):
        """A private ArtifactCache seeded with a pristine copy of the
        module's store file (each test corrupts its own copy)."""
        cache = ArtifactCache(tmp_path)
        target = cache.ecosystem_path(calibration)
        target.write_bytes(store_path.read_bytes())
        return cache

    def _path(self, cache, calibration):
        return cache.ecosystem_path(calibration)

    def test_pristine_copy_hits_and_verifies(self, calibration, cache):
        assert cache.load_ecosystem(calibration) is not None
        assert corpus_store.verify_store(self._path(cache, calibration)) == []

    def test_truncated_store_is_a_miss(self, calibration, cache):
        path = self._path(cache, calibration)
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size // 2)
        assert cache.load_ecosystem(calibration) is None
        assert corpus_store.verify_store(path)

    def test_flipped_byte_is_a_miss(self, calibration, cache):
        path = self._path(cache, calibration)
        size = path.stat().st_size
        index = size // 2 + size // 4  # land in the column blobs
        with open(path, "r+b") as handle:
            handle.seek(index)
            original = handle.read(1)
            handle.seek(index)
            handle.write(bytes([original[0] ^ 0x01]))
        assert cache.load_ecosystem(calibration) is None
        assert corpus_store.verify_store(path)

    def test_tampered_brand_digest_is_a_miss(self, calibration, cache):
        path = self._path(cache, calibration)
        arrays, meta = corpus_store.read_corpus(path)
        brand = meta["brand_layouts"][0][0]
        meta["brand_digests"][brand] = "0" * 40
        corpus_store.write_corpus(path, arrays, meta)
        assert cache.load_ecosystem(calibration) is None
        problems = corpus_store.verify_store(path)
        assert any(
            f"brand {brand}: slice digest mismatch" in p for p in problems
        )

    def test_crash_mid_write_is_a_miss(self, calibration, cache):
        path = self._path(cache, calibration)
        partial = path.read_bytes()
        path.write_bytes(partial[: len(partial) // 3])
        assert cache.load_ecosystem(calibration) is None
        problems = corpus_store.verify_store(path)
        assert problems and "unreadable" in problems[0]

    def test_injected_write_faults_are_misses(self, calibration, cache):
        from repro.exec.faults import plan_from_exec_profile

        path = self._path(cache, calibration)
        arrays, meta = corpus_store.read_corpus(path)
        fault = plan_from_exec_profile("torn-write", seed=5).decide_write(
            "corpus", 0
        )
        corpus_store.write_corpus(path, arrays, meta, fault=fault)
        assert cache.load_ecosystem(calibration) is None
        assert corpus_store.verify_store(path)

    def test_quarantine_moves_the_store_aside(self, calibration, cache):
        path = self._path(cache, calibration)
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size // 2)
        target = corpus_store.quarantine_store(path)
        assert not path.exists()
        assert target.name == path.name + ".quarantined"
        assert cache.load_ecosystem(calibration) is None  # just a miss


class TestApiSurface:
    def test_build_corpus_builds_then_reuses(self, tmp_path):
        first = api.corpus.build(tmp_path, scale=SCALE, shards=2)
        assert first["rebuilt"] is True
        second = api.corpus.build(tmp_path, scale=SCALE)
        assert second["rebuilt"] is False
        assert second["corpus_digest"] == first["corpus_digest"]
        assert api.corpus.info(first["path"])["leaf_count"] == first["leaf_count"]
        listed = api.corpus.list(tmp_path)
        assert [info["path"] for info in listed] == [first["path"]]
