"""Direct tests for record predicates and calibration validation."""

from __future__ import annotations

import datetime

import pytest

from repro.scan.calibration import Calibration
from repro.scan.records import IntermediateRecord, LeafRecord

D = datetime.date


@pytest.fixture()
def record() -> LeafRecord:
    return LeafRecord(
        cert_id=1,
        brand="X",
        intermediate_id=0,
        serial_number=5,
        not_before=D(2014, 1, 1),
        not_after=D(2015, 1, 1),
        birth=D(2014, 1, 10),
        death=D(2014, 11, 1),
        is_ev=False,
        crl_url="http://crl.x.example/0.crl",
        ocsp_url=None,
        revoked_at=D(2014, 6, 1),
    )


class TestLeafRecord:
    def test_fresh_boundaries_inclusive(self, record):
        assert record.is_fresh(D(2014, 1, 1))
        assert record.is_fresh(D(2015, 1, 1))
        assert not record.is_fresh(D(2015, 1, 2))
        assert not record.is_fresh(D(2013, 12, 31))

    def test_alive_boundaries(self, record):
        assert record.is_alive(D(2014, 1, 10))
        assert record.is_alive(D(2014, 11, 1))
        assert not record.is_alive(D(2014, 1, 9))

    def test_revocation_predicates(self, record):
        assert record.is_revoked
        assert record.is_revoked_by(D(2014, 6, 1))
        assert not record.is_revoked_by(D(2014, 5, 31))

    def test_pointer_predicates(self, record):
        assert record.has_crl and not record.has_ocsp
        assert record.has_revocation_info

    def test_validity_days(self, record):
        assert record.validity_days == 365


class TestIntermediateRecord:
    def test_revocation_info(self):
        record = IntermediateRecord(
            intermediate_id=0,
            brand="X",
            subject="X CA",
            spki_hash=b"\x00" * 32,
            has_crl=False,
            has_ocsp=False,
            not_before=D(2010, 1, 1),
            not_after=D(2020, 1, 1),
        )
        assert not record.has_revocation_info


class TestCalibrationValidation:
    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            Calibration(scale=0.0)
        with pytest.raises(ValueError):
            Calibration(scale=1.5)
        Calibration(scale=1.0)  # full paper scale is legal

    def test_scan_count_floor(self):
        with pytest.raises(ValueError):
            Calibration(scan_count=1)

    def test_crawl_window_ordering(self):
        with pytest.raises(ValueError):
            Calibration(
                crawl_start=D(2015, 1, 1),
                crawl_end=D(2014, 1, 1),
            )
