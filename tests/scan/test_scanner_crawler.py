"""Rapid7 scanner and CRL crawler tests."""

from __future__ import annotations

import datetime

import pytest

from repro.scan.crawler import CrlCrawler
from repro.scan.scanner import Rapid7Scanner


@pytest.fixture(scope="module")
def scanner(ecosystem):
    return Rapid7Scanner(ecosystem)


@pytest.fixture(scope="module")
def crawler(ecosystem):
    return CrlCrawler(ecosystem)


class TestScanner:
    def test_scan_matches_ground_truth(self, scanner, ecosystem):
        date = ecosystem.calibration.scan_dates[30]
        snapshot = scanner.scan(date)
        expected = {l.cert_id for l in ecosystem.leaves if l.is_alive(date)}
        assert snapshot.cert_ids == expected
        assert len(snapshot) == len(expected)

    def test_run_all_produces_74_scans(self, scanner, ecosystem):
        snapshots = scanner.run_all()
        assert len(snapshots) == 74
        assert snapshots[0].date == datetime.date(2013, 10, 30)
        # Weekly cadence.
        assert (snapshots[1].date - snapshots[0].date).days == 7

    def test_membership_operator(self, scanner, ecosystem):
        date = ecosystem.calibration.scan_dates[10]
        snapshot = scanner.scan(date)
        alive = next(l for l in ecosystem.leaves if l.is_alive(date))
        assert alive.cert_id in snapshot

    def test_birth_death_table(self, scanner, ecosystem):
        snapshots = scanner.run_all()
        table = scanner.birth_death_table(snapshots)
        for cert_id, (first, last) in list(table.items())[:200]:
            leaf = ecosystem.leaf(cert_id)
            # Scan-derived lifetime is within the ground-truth lifetime.
            assert leaf.birth <= first <= last <= leaf.death

    def test_scan_growth_over_study(self, scanner):
        snapshots = scanner.run_all()
        # The web grew through the study; later scans see more certs.
        assert len(snapshots[-1]) > len(snapshots[0])


class TestCrawler:
    def test_crawl_day_covers_every_crl(self, crawler, ecosystem):
        date = ecosystem.calibration.crawl_start
        observations = crawler.crawl_day(date)
        assert len(observations) == len(ecosystem.crls)
        assert all(obs.entry_count >= 0 for obs in observations)

    def test_daily_totals_keys(self, crawler, ecosystem):
        totals = crawler.daily_total_additions()
        assert set(totals) == set(ecosystem.calibration.crawl_dates)
        assert all(value >= 0 for value in totals.values())

    def test_weekly_pattern(self, crawler):
        totals = crawler.daily_total_additions()
        weekday = [v for d, v in totals.items() if d.weekday() < 5]
        weekend = [v for d, v in totals.items() if d.weekday() >= 5]
        assert sum(weekday) / len(weekday) > 1.5 * sum(weekend) / len(weekend)

    def test_sizes_positive_and_apple_dominates(self, crawler, ecosystem):
        sizes = crawler.sizes_at(ecosystem.calibration.measurement_end)
        assert all(size > 0 for size in sizes.values())
        biggest_url = max(sizes, key=sizes.get)
        assert ecosystem.crl_for_url(biggest_url).brand == "Apple"

    def test_entry_counts_consistent_with_sizes(self, crawler, ecosystem):
        at = ecosystem.calibration.measurement_end
        sizes = crawler.sizes_at(at)
        counts = crawler.entry_counts_at(at)
        # Within a brand, the CRL with the most entries must be bigger
        # than the one with the fewest (entry mix adds noise, so strict
        # monotonicity is not expected).
        by_brand = {}
        for crl in ecosystem.crls:
            by_brand.setdefault(crl.brand, []).append(
                (counts[crl.url], sizes[crl.url])
            )
        for brand, pairs in by_brand.items():
            pairs.sort()
            (min_count, min_size), (max_count, max_size) = pairs[0], pairs[-1]
            if max_count > min_count * 1.2:
                assert max_size > min_size, brand
