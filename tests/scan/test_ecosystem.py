"""Ecosystem generator tests: structure, determinism, calibration bands.

These bands are the reproduction contract for the scan-side experiments;
they assert the paper's *shape*, not its absolute full-scale numbers.
"""

from __future__ import annotations

import datetime

import pytest

from repro.pki.verify import VerificationStatus, verify_chain
from repro.scan.calibration import Calibration
from repro.scan.ecosystem import Ecosystem


class TestStructure:
    def test_leaf_count_scales(self, ecosystem, calibration):
        expected = sum(
            profile.scaled_certs(calibration.scale)
            for profile in ecosystem.profiles
        )
        assert len(ecosystem.leaves) == expected

    def test_every_leaf_has_consistent_dates(self, ecosystem):
        for leaf in ecosystem.leaves:
            assert leaf.not_before < leaf.not_after
            assert leaf.birth >= leaf.not_before
            assert leaf.death >= leaf.birth

    def test_cert_ids_unique(self, ecosystem):
        ids = [leaf.cert_id for leaf in ecosystem.leaves]
        assert len(ids) == len(set(ids))

    def test_serials_unique_within_brand(self, ecosystem):
        for brand in ecosystem.brands:
            leaves = [l for l in ecosystem.leaves if l.brand == brand]
            serials = [l.serial_number for l in leaves]
            assert len(serials) == len(set(serials)), brand

    def test_crl_urls_resolve(self, ecosystem):
        for leaf in ecosystem.leaves:
            if leaf.crl_url is not None:
                crl = ecosystem.crl_for_url(leaf.crl_url)
                assert crl.brand == leaf.brand

    def test_revoked_leaves_appear_in_their_crl(self, ecosystem, measurement_end):
        checked = 0
        for leaf in ecosystem.leaves:
            if leaf.is_revoked and leaf.crl_url and checked < 200:
                crl = ecosystem.crl_for_url(leaf.crl_url)
                serials = {e.serial_number for e in crl.entries}
                assert leaf.serial_number in serials
                checked += 1
        assert checked > 50

    def test_intermediate_records_match_brands(self, ecosystem):
        brands = {p.name for p in ecosystem.profiles}
        assert {rec.brand for rec in ecosystem.intermediates} <= brands

    def test_deterministic_given_seed(self):
        a = Ecosystem(Calibration(scale=0.0005, seed=99))
        b = Ecosystem(Calibration(scale=0.0005, seed=99))
        assert len(a.leaves) == len(b.leaves)
        assert [l.serial_number for l in a.leaves[:50]] == [
            l.serial_number for l in b.leaves[:50]
        ]
        assert a.leaves[10].revoked_at == b.leaves[10].revoked_at

    def test_different_seeds_differ(self):
        a = Ecosystem(Calibration(scale=0.0005, seed=1))
        b = Ecosystem(Calibration(scale=0.0005, seed=2))
        assert [l.not_before for l in a.leaves[:100]] != [
            l.not_before for l in b.leaves[:100]
        ]


class TestChainMaterialization:
    def test_materialized_chain_verifies(self, ecosystem):
        for leaf in ecosystem.leaves[::1500]:
            chain = ecosystem.chain_for(leaf)
            status = verify_chain(chain, ecosystem.root_store)
            assert status is VerificationStatus.OK

    def test_materialized_cert_matches_record(self, ecosystem):
        leaf = ecosystem.leaves[7]
        cert = ecosystem.materialize(leaf)
        assert cert.serial_number == leaf.serial_number
        assert cert.is_ev == leaf.is_ev
        assert (cert.crl_urls[0] if cert.crl_urls else None) == leaf.crl_url
        assert cert.not_before.date() == leaf.not_before


class TestCalibrationBands:
    """The paper-shape contract (§3-§5 aggregates)."""

    def test_revocation_pointer_fractions(self, ecosystem):
        n = len(ecosystem.leaves)
        crl = sum(1 for l in ecosystem.leaves if l.has_crl) / n
        ocsp = sum(1 for l in ecosystem.leaves if l.has_ocsp) / n
        neither = sum(1 for l in ecosystem.leaves if not l.has_revocation_info) / n
        assert crl > 0.98  # paper: 99.9%
        assert 0.90 <= ocsp <= 0.99  # paper: 95.0%
        assert neither < 0.01  # paper: 0.09%

    def test_fresh_revoked_band(self, ecosystem, measurement_end):
        fresh = ecosystem.fresh_leaves(measurement_end)
        fraction = sum(1 for l in fresh if l.is_revoked_by(measurement_end)) / len(
            fresh
        )
        assert 0.05 <= fraction <= 0.13  # paper: >8%

    def test_alive_revoked_band(self, ecosystem, measurement_end):
        alive = ecosystem.alive_leaves(measurement_end)
        fraction = sum(1 for l in alive if l.is_revoked_by(measurement_end)) / len(
            alive
        )
        assert 0.003 <= fraction <= 0.015  # paper: ~0.6%

    def test_pre_heartbleed_band(self, ecosystem):
        day = datetime.date(2014, 3, 1)
        fresh = ecosystem.fresh_leaves(day)
        fraction = sum(1 for l in fresh if l.is_revoked_by(day)) / len(fresh)
        assert 0.002 <= fraction <= 0.025  # paper: ~1%

    def test_heartbleed_spike(self, ecosystem):
        before = datetime.date(2014, 3, 1)
        after = datetime.date(2014, 5, 15)
        f_before = [l for l in ecosystem.fresh_leaves(before)]
        f_after = [l for l in ecosystem.fresh_leaves(after)]
        r_before = sum(1 for l in f_before if l.is_revoked_by(before)) / len(f_before)
        r_after = sum(1 for l in f_after if l.is_revoked_by(after)) / len(f_after)
        assert r_after > 4 * r_before

    def test_brand_revocation_totals_match_profiles(self, ecosystem, calibration):
        for profile in ecosystem.profiles:
            revoked = sum(
                1
                for l in ecosystem.leaves
                if l.brand == profile.name and l.is_revoked
            )
            target = profile.scaled_revoked(calibration.scale)
            assert abs(revoked - target) <= max(2, target * 0.02), profile.name

    def test_ev_fraction_band(self, ecosystem):
        n = len(ecosystem.leaves)
        ev = sum(1 for l in ecosystem.leaves if l.is_ev) / n
        assert 0.015 <= ev <= 0.08  # paper: ~3.7% of fresh certs

    def test_total_crl_entries_far_exceed_observed_revocations(
        self, ecosystem, measurement_end
    ):
        # Paper: 11.46 M CRL entries vs ~420 k observed revocations.
        observed = sum(1 for l in ecosystem.leaves if l.is_revoked)
        assert ecosystem.total_crl_entries(measurement_end) > 10 * observed

    def test_alexa_ranks_assigned(self, ecosystem, calibration):
        ranked = [l for l in ecosystem.leaves if l.alexa_rank is not None]
        assert len(ranked) == calibration.scaled(1_000_000)
        assert len({l.alexa_rank for l in ranked}) == len(ranked)

    def test_invalid_cert_count_ratio(self, ecosystem):
        # Paper: 38.5 M seen vs 5.07 M valid -> ~6.6x more invalid than valid.
        ratio = ecosystem.invalid_cert_count / len(ecosystem.leaves)
        assert 5.0 <= ratio <= 8.0
