"""HiddenPopulation schedule tests."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scan.hidden import HiddenPopulation, weekday_factor

START = datetime.date(2013, 1, 1)
END = datetime.date(2015, 3, 31)
HB = datetime.date(2014, 4, 7)


class TestSchedule:
    def test_exact_target_at_end(self):
        population = HiddenPopulation(10_000, START, END, heartbleed_date=HB)
        assert population.count_at(END) == 10_000

    def test_count_before_window_is_initial(self):
        population = HiddenPopulation(10_000, START, END)
        assert population.count_at(START - datetime.timedelta(days=30)) == (
            population.initial_count
        )

    def test_count_after_window_clamps(self):
        population = HiddenPopulation(10_000, START, END)
        later = END + datetime.timedelta(days=100)
        assert population.count_at(later) == 10_000

    def test_counts_never_negative(self):
        population = HiddenPopulation(500, START, END, heartbleed_date=HB)
        day = START
        while day <= END:
            assert population.count_at(day) >= 0
            day += datetime.timedelta(days=31)

    def test_weekly_pattern_in_additions(self):
        population = HiddenPopulation(100_000, START, END)
        weekdays, weekends = [], []
        day = datetime.date(2013, 6, 3)  # a Monday, pre-Heartbleed
        for i in range(28):
            additions = population.additions_on(day + datetime.timedelta(days=i))
            if (day + datetime.timedelta(days=i)).weekday() < 5:
                weekdays.append(additions)
            else:
                weekends.append(additions)
        assert sum(weekdays) / len(weekdays) > 1.8 * sum(weekends) / len(weekends)

    def test_heartbleed_burst(self):
        population = HiddenPopulation(100_000, START, END, heartbleed_date=HB)
        # Compare the same weekday before and right after Heartbleed.
        before = population.additions_on(HB - datetime.timedelta(days=14))
        after = population.additions_on(HB)
        assert after > 3 * before

    def test_zero_target(self):
        population = HiddenPopulation(0, START, END)
        assert population.count_at(END) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HiddenPopulation(-1, START, END)
        with pytest.raises(ValueError):
            HiddenPopulation(10, END, START)
        with pytest.raises(ValueError):
            HiddenPopulation(10, START, END, churn=0.1, growth=0.5)

    @given(st.integers(min_value=0, max_value=2_000_000))
    @settings(max_examples=20, deadline=None)
    def test_exactness_property(self, target):
        population = HiddenPopulation(target, START, END, heartbleed_date=HB)
        assert population.count_at(END) == target

    @given(st.integers(min_value=100, max_value=50_000))
    @settings(max_examples=10, deadline=None)
    def test_conservation_property(self, target):
        """initial + sum(additions) - sum(removals) == count_at(end)."""
        population = HiddenPopulation(target, START, END)
        total = population.initial_count
        day = START
        while day <= END:
            total += population.additions_on(day) - population.removals_on(day)
            day += datetime.timedelta(days=1)
        assert total == target


def test_weekday_factor_shape():
    monday = datetime.date(2014, 6, 2)
    saturday = datetime.date(2014, 6, 7)
    assert weekday_factor(monday) > 2 * weekday_factor(saturday)
