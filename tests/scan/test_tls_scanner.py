"""Michigan-style TLS handshake scan tests (stapling measurements)."""

from __future__ import annotations

import pytest

from repro.scan.tls_scanner import TlsHandshakeScanner


@pytest.fixture(scope="module")
def scanner(ecosystem):
    return TlsHandshakeScanner(ecosystem)


class TestSummary:
    def test_bands(self, scanner):
        summary = scanner.summary()
        assert 0.01 <= summary.server_fraction <= 0.08  # paper 2.60%
        assert 0.02 <= summary.cert_any_fraction <= 0.09  # paper 5.19%
        assert 0.015 <= summary.cert_all_fraction <= 0.06  # paper 3.09%
        assert summary.cert_all_fraction <= summary.cert_any_fraction

    def test_ev_staples_less(self, scanner):
        summary = scanner.summary()
        assert summary.ev_any_fraction < summary.cert_any_fraction

    def test_server_counts_exceed_cert_counts(self, scanner):
        summary = scanner.summary()
        # One certificate is advertised by many servers (paper: 12.9 M
        # servers vs 2.3 M fresh certs).
        assert summary.servers_total > 3 * summary.certs_total

    def test_stapling_servers_bounded(self, ecosystem):
        for leaf in ecosystem.leaves:
            assert 0 <= leaf.stapling_servers <= leaf.server_count


class TestProbeExperiment:
    def test_monotone_nondecreasing(self, scanner):
        result = scanner.probe_experiment(server_sample=5_000)
        fractions = result.observed_fraction
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))

    def test_single_probe_underestimates(self, scanner):
        result = scanner.probe_experiment(server_sample=5_000)
        assert 0.10 <= result.single_probe_underestimate <= 0.25  # paper ~18%

    def test_converges_high(self, scanner):
        result = scanner.probe_experiment(server_sample=5_000)
        assert result.observed_fraction[-1] >= 0.97

    def test_probe_count_respected(self, scanner):
        result = scanner.probe_experiment(server_sample=500, probes=4)
        assert result.probes == 4
        assert len(result.observed_fraction) == 4
