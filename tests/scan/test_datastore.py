"""Export/import round-trip tests for the data-release module."""

from __future__ import annotations

import datetime
import json

import pytest

from repro.scan.datastore import export_study, load_export


@pytest.fixture(scope="module")
def export_dir(study, tmp_path_factory):
    directory = tmp_path_factory.mktemp("export")
    return export_study(study, directory)


class TestExport:
    def test_files_present(self, export_dir):
        for name in (
            "manifest.json",
            "leaf_set.csv",
            "scans.json",
            "crl_series.csv",
            "crlset_daily.csv",
        ):
            assert (export_dir / name).exists(), name

    def test_manifest_contents(self, export_dir, study):
        manifest = json.loads((export_dir / "manifest.json").read_text())
        assert manifest["scale"] == study.calibration.scale
        assert manifest["leaf_count"] == len(study.ecosystem.leaves)
        assert len(manifest["scan_dates"]) == 74


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def loaded(self, export_dir):
        return load_export(export_dir)

    def test_leaf_count(self, loaded, study):
        assert loaded.leaf_count == len(study.ecosystem.leaves)

    def test_revoked_counts_match(self, loaded, study):
        expected = sum(1 for l in study.ecosystem.leaves if l.is_revoked)
        assert len(loaded.revoked_leaves()) == expected

    def test_scans_match(self, loaded, study):
        for snapshot in study.scans[:5]:
            assert loaded.scans[snapshot.date] == snapshot.cert_ids

    def test_fresh_revoked_recomputable_from_export(self, loaded, study):
        """The headline fraction must be derivable from the release alone."""
        end = study.calibration.measurement_end
        from_export = loaded.fresh_revoked_fraction(end)
        fresh = study.ecosystem.fresh_leaves(end)
        ground = sum(1 for l in fresh if l.is_revoked_by(end)) / len(fresh)
        assert from_export == pytest.approx(ground, abs=1e-9)

    def test_crlset_series_matches(self, loaded, study):
        history = study.crlset_history
        probe = datetime.date(2014, 6, 15)
        assert loaded.crlset_daily[probe]["entries"] == history.daily_entry_counts[
            probe
        ]
