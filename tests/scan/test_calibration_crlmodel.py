"""Calibration dataclass and scan-side CRL model tests."""

from __future__ import annotations

import datetime

import pytest

from repro.pki.keys import KeyPair
from repro.pki.name import Name
from repro.revocation.reason import ReasonCode
from repro.scan.calibration import Calibration, PaperTargets
from repro.scan.crl_model import CrlEntryRecord, EcosystemCrl


class TestCalibration:
    def test_scan_dates(self):
        cal = Calibration()
        dates = cal.scan_dates
        assert len(dates) == 74
        assert dates[0] == datetime.date(2013, 10, 30)
        assert cal.scan_end == dates[-1]
        # Paper: scans through (late) March 2015.
        assert datetime.date(2015, 3, 1) <= dates[-1] <= datetime.date(2015, 4, 5)

    def test_crawl_dates_daily(self):
        cal = Calibration()
        dates = cal.crawl_dates
        assert dates[0] == datetime.date(2014, 10, 2)
        assert dates[-1] == datetime.date(2015, 3, 31)
        assert len(dates) == (dates[-1] - dates[0]).days + 1

    def test_scaled(self):
        cal = Calibration(scale=0.002)
        assert cal.scaled(1_000_000) == 2000
        assert cal.scaled(10) == 1  # floor at 1

    def test_crlset_cap_is_scale_invariant(self):
        small = Calibration(scale=0.001)
        big = Calibration(scale=0.1)
        assert small.crlset_size_cap_bytes == big.crlset_size_cap_bytes == 256_000

    def test_paper_targets_frozen_values(self):
        targets = PaperTargets()
        assert targets.leaf_set_size == 5_067_476
        assert targets.crlset_coverage_fraction == pytest.approx(0.0035)
        assert targets.total_crl_entries == 11_461_935


class TestEcosystemCrl:
    @pytest.fixture()
    def crl(self):
        keys = KeyPair.generate("model-ca")
        return EcosystemCrl(
            url="http://crl.model.example/0.crl",
            brand="Model",
            intermediate_id=0,
            issuer_name=Name.make("Model CA"),
            issuer_key_hash=keys.key_id,
            signature_size=256,
            signature_algorithm_oid="1.2.840.113549.1.1.11",
            serial_bytes=4,
        ), keys

    def test_entry_visibility_window(self, crl):
        model, _keys = crl
        entry = CrlEntryRecord(
            serial_number=5,
            revoked_at=datetime.date(2014, 6, 1),
            reason=None,
            cert_not_after=datetime.date(2014, 12, 1),
        )
        model.add_entry(entry)
        assert model.entry_count(datetime.date(2014, 7, 1)) == 1
        assert model.entry_count(datetime.date(2014, 5, 1)) == 0
        assert model.entry_count(datetime.date(2015, 1, 1)) == 0  # expired

    def test_additions_on(self, crl):
        model, _keys = crl
        day = datetime.date(2014, 6, 1)
        model.add_entry(CrlEntryRecord(1, day, None, day + datetime.timedelta(days=90)))
        model.add_entry(CrlEntryRecord(2, day, None, day + datetime.timedelta(days=90)))
        assert model.additions_on(day) == 2
        assert model.additions_on(day + datetime.timedelta(days=1)) == 0

    def test_size_matches_real_encoding(self, crl):
        """size_bytes (arithmetic) == len(to_crl(...).to_der()) when all
        entries are materialised."""
        model, keys = crl
        day = datetime.date(2014, 6, 1)
        for serial in range(200):
            model.add_entry(
                CrlEntryRecord(
                    1000 + serial,
                    day,
                    ReasonCode.UNSPECIFIED if serial % 3 == 0 else None,
                    day + datetime.timedelta(days=365),
                )
            )
        check_day = datetime.date(2014, 8, 1)
        real = model.to_crl(check_day, keys)
        assert model.size_bytes(check_day) == len(real.to_der())

    def test_hidden_population_adds_size(self, crl):
        from repro.scan.hidden import HiddenPopulation

        model, _keys = crl
        day = datetime.date(2014, 8, 1)
        empty_size = model.size_bytes(day)
        model.hidden = HiddenPopulation(
            5000, datetime.date(2013, 1, 1), datetime.date(2015, 3, 31)
        )
        assert model.size_bytes(day) > empty_size + 5000 * 20
